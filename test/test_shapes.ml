(* Section 3.6 query shapes end to end: DISTINCT, grouped aggregates,
   ORDER BY first-k and EXISTS, each judged against the brute-force
   oracle — single engine (both probe paths) and across shard counts
   with merged partial accumulators — plus the accumulator algebra,
   the shared total order, probe fast paths, shell syntax and the
   binder's rejections. *)

open Minirel_storage
open Minirel_query
module View = Pmv.View
module Answer = Pmv.Answer
module Ext = Pmv.Extensions
module Check = Minirel_check.Check
module Torture = Minirel_check.Torture
module Querygen = Minirel_workload.Querygen
module Grouping = Minirel_exec.Grouping
module Cursor = Minirel_exec.Cursor
module Router = Minirel_engine.Shard_router
module Txn = Minirel_txn.Txn
module Shell = Minirel_shell.Shell
module Binder = Minirel_sql.Binder

let check = Alcotest.check
let vi i = Value.Int i

(* Expanded Ls' positions of the eqt fixture: (rkey, e, f, g). *)
let key_g = [| 3 |]

let aggs_all =
  [|
    Aggregate.Count;
    Aggregate.Sum 1;
    Aggregate.Min 0;
    Aggregate.Max 0;
    Aggregate.Avg 1;
  |]

let order_er = [| (1, true); (0, false) |]

(* Finalized values: ints compare exactly; AVG divides the same exact
   int sums on both sides, so plain equality holds here too. *)
let groups_equal expected actual =
  List.length expected = List.length actual
  && List.for_all2
       (fun (ek, evs) (ak, avs) ->
         Tuple.compare ek ak = 0 && Array.for_all2 Value.equal evs avs)
       expected actual

(* --- accumulator algebra ----------------------------------------------- *)

let row e = [| vi 0; vi e; vi 0; vi 0 |]

let test_count_sum_exact_ints () =
  let acc = Aggregate.create () in
  List.iter (Aggregate.add (Aggregate.Sum 1) acc) [ row 3; row 4; row 5 ];
  check Helpers.value "exact int sum" (vi 12) (Aggregate.finalize (Aggregate.Sum 1) acc);
  let c = Aggregate.create () in
  List.iter (Aggregate.add Aggregate.Count c) [ row 1; row 2 ];
  check Helpers.value "count" (vi 2) (Aggregate.finalize Aggregate.Count c)

let test_sum_goes_float () =
  let acc = Aggregate.create () in
  Aggregate.add (Aggregate.Sum 1) acc [| vi 0; vi 3; vi 0; vi 0 |];
  Aggregate.add (Aggregate.Sum 1) acc [| vi 0; Value.Float 0.5; vi 0; vi 0 |];
  check Helpers.value "float contaminates" (Value.Float 3.5)
    (Aggregate.finalize (Aggregate.Sum 1) acc)

(* AVG must ship SUM+COUNT: averaging two per-shard averages of unequal
   group sizes is wrong, merging the accumulators is right. *)
let test_avg_is_sum_plus_count () =
  let a = Aggregate.create () and b = Aggregate.create () in
  List.iter (Aggregate.add (Aggregate.Avg 1) a) [ row 10 ];
  List.iter (Aggregate.add (Aggregate.Avg 1) b) [ row 2; row 3; row 4 ];
  let avg_of_avgs = (10.0 +. 3.0) /. 2.0 in
  Aggregate.merge a b;
  check Helpers.value "merged avg" (Value.Float 4.75) (Aggregate.finalize (Aggregate.Avg 1) a);
  check Alcotest.bool "avg-of-avgs would differ" true
    (Value.Float avg_of_avgs <> Aggregate.finalize (Aggregate.Avg 1) a)

let qcheck_merge_associative =
  QCheck2.Test.make ~name:"accumulator merge is associative and commutative" ~count:100
    QCheck2.Gen.(
      pair (int_range 0 5)
        (list_size (int_range 0 12) (pair (int_range (-9) 9) (int_range (-9) 9))))
    (fun (which, cells) ->
      let spec =
        match which with
        | 0 -> Aggregate.Count
        | 1 -> Aggregate.Count_of 1
        | 2 -> Aggregate.Sum 1
        | 3 -> Aggregate.Avg 1
        | 4 -> Aggregate.Min 1
        | _ -> Aggregate.Max 1
      in
      let tuples = List.map (fun (a, b) -> [| vi a; vi b |]) cells in
      let split3 l =
        List.filteri (fun i _ -> i mod 3 = 0) l,
        List.filteri (fun i _ -> i mod 3 = 1) l,
        List.filteri (fun i _ -> i mod 3 = 2) l
      in
      let xs, ys, zs = split3 tuples in
      let acc_of l =
        let a = Aggregate.create () in
        List.iter (Aggregate.add spec a) l;
        a
      in
      (* (x <- y) <- z  vs  x <- (y <- z)  vs  (z <- y) <- x *)
      let left = acc_of xs in
      Aggregate.merge left (acc_of ys);
      Aggregate.merge left (acc_of zs);
      let yz = acc_of ys in
      Aggregate.merge yz (acc_of zs);
      let right = acc_of xs in
      Aggregate.merge right yz;
      let comm = acc_of zs in
      Aggregate.merge comm (acc_of ys);
      Aggregate.merge comm (acc_of xs);
      Aggregate.equal_acc spec left right
      && Aggregate.equal_acc spec left comm
      && Value.equal (Aggregate.finalize spec left) (Aggregate.finalize spec comm))

let test_remove_inverts_add () =
  let spec = Aggregate.Sum 1 in
  let acc = Aggregate.create () in
  List.iter (Aggregate.add spec acc) [ row 3; row 7 ];
  check Alcotest.bool "sum removal ok" true (Aggregate.remove spec acc (row 7) = `Ok);
  let solo = Aggregate.create () in
  Aggregate.add spec solo (row 3);
  check Alcotest.bool "back to singleton" true (Aggregate.equal_acc spec solo acc)

let test_minmax_remove_extremum_rebuilds () =
  let spec = Aggregate.Min 1 in
  let acc = Aggregate.create () in
  List.iter (Aggregate.add spec acc) [ row 2; row 5; row 9 ];
  check Alcotest.bool "interior delete fine" true (Aggregate.remove spec acc (row 5) = `Ok);
  check Alcotest.bool "extremum delete rebuilds" true
    (Aggregate.remove spec acc (row 2) = `Rebuild)

let test_nulls_skipped () =
  let spec = Aggregate.Avg 1 in
  let acc = Aggregate.create () in
  Aggregate.add spec acc [| vi 0; Value.Null; vi 0; vi 0 |];
  Aggregate.add spec acc (row 8);
  check Helpers.value "null skipped" (Value.Float 8.0) (Aggregate.finalize spec acc);
  let empty = Aggregate.create () in
  Aggregate.add spec empty [| vi 0; Value.Null; vi 0; vi 0 |];
  check Helpers.value "all-null group is Null" Value.Null (Aggregate.finalize spec empty)

let test_of_tuples_matches_incremental () =
  let specs = aggs_all in
  let tuples = List.init 20 (fun i -> [| vi i; vi (i * 3 mod 7); vi 0; vi 0 |]) in
  let oracle = Aggregate.of_tuples specs tuples in
  let incr = Array.map (fun _ -> Aggregate.create ()) specs in
  List.iter (fun t -> Array.iteri (fun i s -> Aggregate.add s incr.(i) t) specs) tuples;
  Array.iteri
    (fun i s ->
      check Alcotest.bool (Aggregate.name s) true (Aggregate.equal_acc s oracle.(i) incr.(i)))
    specs

(* --- the shared total order and top-k ---------------------------------- *)

let test_cmp_total_order () =
  let order = [| (1, true) |] in
  let a = [| vi 1; vi 5 |] and b = [| vi 2; vi 5 |] in
  (* equal order keys: the full tuple breaks the tie deterministically *)
  check Alcotest.bool "ties broken" true (Ordering.cmp ~order a b <> 0);
  check Alcotest.int "antisymmetric" 0
    (compare (Ordering.cmp ~order a b) (-Ordering.cmp ~order b a));
  check Alcotest.int "reflexive" 0 (Ordering.cmp ~order a a)

let qcheck_top_k_vs_sort =
  QCheck2.Test.make ~name:"heap top-k == sort-then-take" ~count:200
    QCheck2.Gen.(
      triple (int_range 0 10)
        (list_size (int_range 0 40) (pair (int_range 0 6) (int_range 0 6)))
        bool)
    (fun (k, cells, desc) ->
      let tuples = List.map (fun (a, b) -> [| vi a; vi b |]) cells in
      let order = [| (0, desc); (1, not desc) |] in
      k = 0
      ||
      let heap =
        Grouping.top_k ~cmp:(Ordering.cmp ~order) ~k (Cursor.of_list tuples)
      in
      List.equal Tuple.equal heap (Ordering.first_k ~order ~k tuples))

let qcheck_group_hash_vs_oracle =
  QCheck2.Test.make ~name:"group_hash == of_tuples per group" ~count:100
    QCheck2.Gen.(list_size (int_range 0 30) (pair (int_range 0 4) (int_range (-5) 5)))
    (fun cells ->
      let tuples = List.map (fun (k, v) -> [| vi k; vi v |]) cells in
      let key = [| 0 |] and aggs = [| Aggregate.Count; Aggregate.Sum 1; Aggregate.Avg 1 |] in
      let groups = Grouping.group_hash ~key ~aggs (Cursor.of_list tuples) in
      List.for_all
        (fun (gk, accs) ->
          let members = List.filter (fun t -> Value.equal t.(0) gk.(0)) tuples in
          let oracle = Aggregate.of_tuples aggs members in
          Array.for_all2 (fun s (a, b) -> Aggregate.equal_acc s a b) aggs
            (Array.map2 (fun a b -> (a, b)) accs oracle))
        groups)

(* --- single-engine differential (both probe paths) --------------------- *)

let setup () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  let c = Template.compile catalog Helpers.eqt_spec in
  let view = View.create ~capacity:30 ~f_max:3 ~name:"shapes" c in
  (catalog, c, view)

let inst c ~fs ~gs =
  let dvs l = Instance.Dvalues (List.map vi (List.sort_uniq compare l)) in
  Instance.make c [| dvs fs; dvs gs |]

let shape_gen =
  QCheck2.Gen.(
    triple bool
      (list_size (int_range 1 3) (int_range 0 9))
      (list_size (int_range 1 3) (int_range 0 7)))

let path_of epoch = if epoch then Answer.Epoch else Answer.Locked

let qcheck_engine_distinct =
  QCheck2.Test.make ~name:"engine distinct == oracle (locked+epoch)" ~count:60 shape_gen
    (fun (epoch, fs, gs) ->
      let catalog, c, view = setup () in
      let q = inst c ~fs ~gs in
      let probe_path = path_of epoch in
      ignore (Helpers.collect_answer ~view catalog q) (* warm *);
      let out = ref [] in
      let _, n =
        Ext.answer_distinct ~probe_path ~view catalog q ~on_tuple:(fun _ t ->
            out := t :: !out)
      in
      let expect = Check.ground_truth_distinct catalog q in
      n = List.length expect && Helpers.same_multiset !out expect)

let qcheck_engine_grouped =
  QCheck2.Test.make ~name:"engine grouped == oracle (locked+epoch)" ~count:60 shape_gen
    (fun (epoch, fs, gs) ->
      let catalog, c, view = setup () in
      let q = inst c ~fs ~gs in
      ignore (Helpers.collect_answer ~view catalog q);
      let g =
        Ext.answer_groups ~probe_path:(path_of epoch) ~view catalog q ~key:key_g
          ~aggs:aggs_all
      in
      let actual = Ext.finalize_groups ~aggs:aggs_all g.Ext.g_groups in
      let expected = Check.ground_truth_grouped catalog q ~key:key_g ~aggs:aggs_all in
      groups_equal expected actual
      (* the partial preview only covers cached tuples: every partial
         group key must exist in the exact answer *)
      && List.for_all
           (fun (pk, _) -> List.exists (fun (ek, _) -> Tuple.compare pk ek = 0) expected)
           (Ext.finalize_groups ~aggs:aggs_all g.Ext.g_partial))

let qcheck_engine_ordered =
  QCheck2.Test.make ~name:"engine first-k prefix-exact (locked+epoch)" ~count:60
    QCheck2.Gen.(pair shape_gen (int_range 1 8))
    (fun ((epoch, fs, gs), k) ->
      let catalog, c, view = setup () in
      let q = inst c ~fs ~gs in
      ignore (Helpers.collect_answer ~view catalog q);
      let rows, _ =
        Ext.answer_ordered_k ~probe_path:(path_of epoch) ~view catalog q ~order:order_er
          ~k
      in
      List.equal Tuple.equal rows
        (Check.ground_truth_ordered catalog q ~order:order_er ~limit:k ()))

let qcheck_engine_exists =
  QCheck2.Test.make ~name:"engine exists == oracle (locked+epoch)" ~count:60 shape_gen
    (fun (epoch, fs, gs) ->
      let catalog, c, view = setup () in
      let q = inst c ~fs ~gs in
      ignore (Helpers.collect_answer ~view catalog q);
      let got, _ = Ext.exists_ ~probe_path:(path_of epoch) ~view catalog q in
      got = Check.ground_truth_exists catalog q)

let test_exists_witness_from_pmv () =
  let catalog, c, view = setup () in
  let q = inst c ~fs:[ 1 ] ~gs:[ 1 ] in
  ignore (Helpers.collect_answer ~view catalog q);
  check Alcotest.bool "oracle says yes" true (Check.ground_truth_exists catalog q);
  (match Ext.exists_ ~view catalog q with
  | true, `From_pmv -> ()
  | true, `Executed -> Alcotest.fail "warm witness should come from the PMV"
  | false, _ -> Alcotest.fail "exists lost the witness");
  check Alcotest.bool "cached_witness agrees" true (Ext.cached_witness ~view q)

(* The per-entry aggregate memo must not survive maintenance: delete
   rows through an attached txn manager and re-ask. *)
let test_entry_agg_cache_fresh_after_delete () =
  let catalog, c, view = setup () in
  let mgr = Txn.create catalog in
  Pmv.Maintain.attach ~use_locks:false view mgr;
  let q = inst c ~fs:[ 1 ] ~gs:[ 1 ] in
  ignore (Helpers.collect_answer ~view catalog q);
  let warm = Ext.answer_groups ~view catalog q ~key:key_g ~aggs:aggs_all in
  check Alcotest.bool "warm matches oracle" true
    (groups_equal
       (Check.ground_truth_grouped catalog q ~key:key_g ~aggs:aggs_all)
       (Ext.finalize_groups ~aggs:aggs_all warm.Ext.g_groups));
  (* rkey = 1 has f = 1: it participates in the warm answer *)
  ignore
    (Txn.run mgr
       [ Txn.Delete { rel = "r"; pred = Predicate.Cmp (Predicate.Eq, 0, vi 1) } ]);
  let fresh = Ext.answer_groups ~view catalog q ~key:key_g ~aggs:aggs_all in
  check Alcotest.bool "post-delete matches oracle" true
    (groups_equal
       (Check.ground_truth_grouped catalog q ~key:key_g ~aggs:aggs_all)
       (Ext.finalize_groups ~aggs:aggs_all fresh.Ext.g_groups))

let test_probe_groups_fast_path () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  let c = Template.compile catalog Helpers.eqt_spec in
  (* roomy enough that the warm answer caches every bcp completely *)
  let view = View.create ~capacity:64 ~f_max:64 ~name:"shapes_probe" c in
  let q = inst c ~fs:[ 2 ] ~gs:[ 2 ] in
  check Alcotest.bool "cold probe misses" true
    (Ext.probe_groups ~probe_path:Answer.Epoch ~view q ~key:key_g ~aggs:aggs_all = None);
  (* the first epoch answer misses, falls back and installs trusted
     complete versions into the probe store *)
  ignore
    (Answer.answer ~probe_path:Answer.Epoch ~view catalog q ~on_tuple:(fun _ _ -> ()));
  match Ext.probe_groups ~probe_path:Answer.Epoch ~view q ~key:key_g ~aggs:aggs_all with
  | None -> Alcotest.fail "warm probe should hit"
  | Some acc ->
      check Alcotest.bool "probe == oracle" true
        (groups_equal
           (Check.ground_truth_grouped catalog q ~key:key_g ~aggs:aggs_all)
           (Ext.finalize_groups ~aggs:aggs_all acc))

(* --- sharded differential ---------------------------------------------- *)

let make_sharded ?(shards = 3) () =
  let reference = Helpers.fresh_catalog () in
  Helpers.build_rs reference;
  let router = Router.create ~shards () in
  Router.declare router Helpers.r_schema ~part:(`Hash "c");
  Router.declare router Helpers.s_schema ~part:(`Hash "d");
  Router.load_from router reference;
  let compiled = Template.compile reference Helpers.eqt_spec in
  ignore (Router.create_view ~capacity:64 router compiled);
  (reference, router, compiled)

let mirror reference router change =
  ignore (Router.run router [ change ]);
  ignore (Txn.run (Txn.create reference) [ change ])

let sharded_gen =
  QCheck2.Gen.(
    pair
      (triple (int_range 1 4) bool (list_size (int_range 0 4) (int_range 0 39)))
      (pair
         (list_size (int_range 1 3) (int_range 0 9))
         (list_size (int_range 1 3) (int_range 0 7))))

(* One property per shape: shards in 1..4, both probe paths, cold and
   after routed DML mirrored into the unsharded reference. *)
let with_sharded (shards, epoch, inserts) (fs, gs) judge =
  let reference, router, compiled = make_sharded ~shards () in
  Router.set_probe_path router (path_of epoch);
  let q = inst compiled ~fs ~gs in
  ignore (Router.answer router q ~on_tuple:(fun _ _ -> ())) (* warm *);
  let cold = judge reference router q in
  List.iteri
    (fun i cv ->
      mirror reference router
        (Txn.Insert
           { rel = "r"; tuple = [| vi (1000 + i); vi cv; vi (cv mod 10); Value.Str "x" |] }))
    inserts;
  cold && judge reference router q

let qcheck_sharded_distinct =
  QCheck2.Test.make ~name:"sharded distinct == oracle (1-4 shards, both paths)" ~count:40
    sharded_gen
    (fun (cfg, sel) ->
      with_sharded cfg sel (fun reference router q ->
          let seen = Tuple.Table.create 32 and out = ref [] in
          ignore
            (Router.answer router q ~on_tuple:(fun _ t ->
                 if not (Tuple.Table.mem seen t) then begin
                   Tuple.Table.replace seen t ();
                   out := t :: !out
                 end));
          Helpers.same_multiset !out (Check.ground_truth_distinct reference q)))

let qcheck_sharded_grouped =
  QCheck2.Test.make
    ~name:"sharded grouped merges shard partials == oracle (1-4 shards, both paths)"
    ~count:40 sharded_gen
    (fun (cfg, sel) ->
      with_sharded cfg sel (fun reference router q ->
          let g, _ = Router.answer_grouped router q ~key:key_g ~aggs:aggs_all in
          groups_equal
            (Check.ground_truth_grouped reference q ~key:key_g ~aggs:aggs_all)
            (Ext.finalize_groups ~aggs:aggs_all g.Ext.g_groups)))

let qcheck_sharded_ordered =
  QCheck2.Test.make ~name:"sharded first-k prefix-exact (1-4 shards, both paths)"
    ~count:40
    QCheck2.Gen.(pair sharded_gen (int_range 1 6))
    (fun ((cfg, sel), k) ->
      with_sharded cfg sel (fun reference router q ->
          let rows, _ = Router.answer_ordered_k router q ~order:order_er ~k in
          List.equal Tuple.equal rows
            (Check.ground_truth_ordered reference q ~order:order_er ~limit:k ())))

let qcheck_sharded_exists =
  QCheck2.Test.make ~name:"sharded exists == oracle (1-4 shards, both paths)" ~count:40
    sharded_gen
    (fun (cfg, sel) ->
      with_sharded cfg sel (fun reference router q ->
          fst (Router.exists_ router q) = Check.ground_truth_exists reference q))

let test_router_probe_grouped () =
  let reference, router, compiled = make_sharded ~shards:4 () in
  Router.set_probe_path router Answer.Epoch;
  let q = inst compiled ~fs:[ 1 ] ~gs:[ 1 ] in
  check Alcotest.bool "cold router probe misses" true
    (Router.probe_grouped router q ~key:key_g ~aggs:aggs_all = None);
  (* first epoch answer falls back and installs the merged bcp answers
     into the router-level segments; then the grouped probe can fold
     the answer from the cache alone *)
  ignore (Router.answer router q ~on_tuple:(fun _ _ -> ()));
  match Router.probe_grouped router q ~key:key_g ~aggs:aggs_all with
  | None -> Alcotest.fail "warm router probe should hit"
  | Some acc ->
      check Alcotest.bool "router probe == oracle" true
        (groups_equal
           (Check.ground_truth_grouped reference q ~key:key_g ~aggs:aggs_all)
           (Ext.finalize_groups ~aggs:aggs_all acc))

(* A grouped epoch miss warms the router cache too: the fan-out merge
   captures each exact bcp's stream and installs it, so the very next
   grouped probe of the same instance folds from the segments. *)
let test_grouped_miss_installs () =
  let reference, router, compiled = make_sharded ~shards:4 () in
  Router.set_probe_path router Answer.Epoch;
  let q = inst compiled ~fs:[ 2 ] ~gs:[ 2 ] in
  check Alcotest.bool "cold router probe misses" true
    (Router.probe_grouped router q ~key:key_g ~aggs:aggs_all = None);
  let g, _ = Router.answer_grouped router q ~key:key_g ~aggs:aggs_all in
  check Alcotest.bool "fallback matches oracle" true
    (groups_equal
       (Check.ground_truth_grouped reference q ~key:key_g ~aggs:aggs_all)
       (Ext.finalize_groups ~aggs:aggs_all g.Ext.g_groups));
  match Router.probe_grouped router q ~key:key_g ~aggs:aggs_all with
  | None -> Alcotest.fail "probe after a grouped miss should hit"
  | Some acc ->
      check Alcotest.bool "installed probe == oracle" true
        (groups_equal
           (Check.ground_truth_grouped reference q ~key:key_g ~aggs:aggs_all)
           (Ext.finalize_groups ~aggs:aggs_all acc))

(* The sharded refusal to migrate rows must hold for templates asked in
   grouped form too: partition-key updates raise before any shard
   mutates. *)
let test_partition_key_update_refused () =
  let _, router, _ = make_sharded ~shards:3 () in
  let change =
    Txn.Update
      {
        rel = "r";
        pred = Predicate.Cmp (Predicate.Eq, 0, vi 1);
        set = [ (1, vi 999) ] (* c is r's partition key *);
      }
  in
  (match Router.targets router change with
  | _ -> Alcotest.fail "partition-key update must be refused"
  | exception Invalid_argument _ -> ());
  match Router.run router [ change ] with
  | _ -> Alcotest.fail "run must refuse too"
  | exception Invalid_argument _ -> ()

(* --- shell syntax end to end ------------------------------------------- *)

let fresh_shell () = Shell.create (Helpers.fresh_catalog ())

let build_inventory shell =
  let run sql =
    match Shell.exec shell sql with
    | r -> r
    | exception e -> Alcotest.failf "statement failed: %s (%s)" sql (Printexc.to_string e)
  in
  ignore (run "create table items (ik int, category int, price float, label string)");
  ignore (run "create table stock (ik int, store int, qty int)");
  ignore (run "create index items_ik on items (ik)");
  ignore (run "create index items_category on items (category)");
  ignore (run "create index stock_ik on stock (ik)");
  ignore (run "create index stock_store on stock (store)");
  for ik = 1 to 40 do
    ignore
      (run
         (Fmt.str "insert into items values (%d, %d, %d.5, 'item %d')" ik (ik mod 5)
            (ik * 10) ik));
    ignore (run (Fmt.str "insert into stock values (%d, %d, %d)" ik (ik mod 4) (ik mod 7)))
  done;
  run

let test_shell_distinct () =
  let shell = fresh_shell () in
  let run = build_inventory shell in
  (* categories repeat every 5 items: DISTINCT collapses them *)
  match run "select distinct i.category from items i where (i.category in (1, 2, 3))" with
  | Shell.Rows { rows; header; _ } ->
      check (Alcotest.list Alcotest.string) "header" [ "category" ] header;
      check Alcotest.int "three distinct categories" 3 (List.length rows);
      check Alcotest.int "no duplicates" 3
        (List.length (List.sort_uniq Tuple.compare rows))
  | _ -> Alcotest.fail "rows expected"

let test_shell_distinct_limit_after_dedup () =
  let shell = fresh_shell () in
  let run = build_inventory shell in
  match run "select distinct i.category from items i where (i.category in (1, 2, 3)) limit 2" with
  | Shell.Rows { rows; _ } ->
      check Alcotest.int "limit cuts distinct rows" 2 (List.length rows);
      check Alcotest.int "still no duplicates" 2
        (List.length (List.sort_uniq Tuple.compare rows))
  | _ -> Alcotest.fail "rows expected"

let test_shell_group_by_all_aggregates () =
  let shell = fresh_shell () in
  let run = build_inventory shell in
  match
    run
      "select i.category, count(*), sum(s.qty), min(s.qty), max(s.qty), avg(s.qty) from \
       items i, stock s where i.ik = s.ik and (i.category in (1, 2)) group by i.category"
  with
  | Shell.Grouped { header; groups; _ } ->
      check (Alcotest.list Alcotest.string) "header"
        [ "category"; "count(*)"; "sum(qty)"; "min(qty)"; "max(qty)"; "avg(qty)" ]
        header;
      check Alcotest.int "two groups" 2 (List.length groups);
      List.iter
        (fun (key, vals) ->
          let cat = Value.int_exn key.(0) in
          (* items ik with ik mod 5 = cat, ik in 1..40 -> 8 rows; qty = ik mod 7 *)
          let iks = List.init 40 (fun i -> i + 1) in
          let members = List.filter (fun ik -> ik mod 5 = cat) iks in
          let qtys = List.map (fun ik -> ik mod 7) members in
          let sum = List.fold_left ( + ) 0 qtys in
          check Helpers.value "count" (vi (List.length members)) (List.nth vals 0);
          check Helpers.value "sum" (vi sum) (List.nth vals 1);
          check Helpers.value "min" (vi (List.fold_left min 99 qtys)) (List.nth vals 2);
          check Helpers.value "max" (vi (List.fold_left max (-1) qtys)) (List.nth vals 3);
          check Helpers.value "avg"
            (Value.Float (float_of_int sum /. float_of_int (List.length members)))
            (List.nth vals 4))
        groups
  | _ -> Alcotest.fail "grouped expected"

let test_shell_order_by_limit_prefix () =
  let shell = fresh_shell () in
  let run = build_inventory shell in
  match
    run
      "select i.ik, i.price from items i where (i.category in (1, 2, 3)) order by \
       i.price desc, i.ik limit 5"
  with
  | Shell.Rows { rows; total; _ } ->
      check Alcotest.int "five rows" 5 (List.length rows);
      check Alcotest.bool "total counts the full answer" true (total >= 5);
      let prices = List.map (fun r -> Value.float_exn r.(1)) rows in
      check Alcotest.bool "descending" true (List.sort compare prices = List.rev prices)
  | _ -> Alcotest.fail "rows expected"

let test_shell_exists () =
  let shell = fresh_shell () in
  let run = build_inventory shell in
  (* stock rows exist only for ik 1..40; the correlated EXISTS keeps
     every item with stock in store 1 *)
  (match
     run
       "select i.ik from items i where (i.category in (1, 2)) and exists (select s.ik \
        from stock s where s.ik = i.ik and (s.store = 1))"
   with
  | Shell.Rows { rows; _ } ->
      let expect =
        List.filter
          (fun ik -> (ik mod 5 = 1 || ik mod 5 = 2) && ik mod 4 = 1)
          (List.init 40 (fun i -> i + 1))
      in
      check Alcotest.int "filtered by exists" (List.length expect) (List.length rows);
      List.iter
        (fun r -> check Alcotest.bool "ik has store-1 stock" true
            (List.mem (Value.int_exn r.(0)) expect))
        rows
  | _ -> Alcotest.fail "rows expected");
  (* an EXISTS that can never hold filters everything *)
  match
    run
      "select i.ik from items i where (i.category in (1, 2)) and exists (select s.ik \
       from stock s where s.ik = i.ik and (s.store = 9))"
  with
  | Shell.Rows { rows = []; _ } -> ()
  | Shell.Rows { rows; _ } -> Alcotest.failf "expected empty, got %d" (List.length rows)
  | _ -> Alcotest.fail "rows expected"

let test_shape_counters () =
  let shell = fresh_shell () in
  let run = build_inventory shell in
  ignore (run "metrics reset");
  ignore (run "select distinct i.category from items i where (i.category = 1)");
  ignore
    (run "select i.category, count(*) from items i where (i.category = 1) group by i.category");
  ignore (run "select i.ik from items i where (i.category = 1) order by i.ik limit 2");
  ignore
    (run
       "select i.ik from items i where (i.category = 1) and exists (select s.ik from \
        stock s where s.ik = i.ik and (s.store = 1))");
  match run "metrics" with
  | Shell.Metrics text ->
      List.iter
        (fun shape ->
          check Alcotest.bool (Fmt.str "counter answer.shape.%s present" shape) true
            (let needle = "answer.shape." ^ shape in
             let n = String.length text and m = String.length needle in
             let rec go i = i + m <= n && (String.sub text i m = needle || go (i + 1)) in
             go 0))
        [ "distinct"; "grouped"; "ordered"; "exists" ]
  | _ -> Alcotest.fail "metrics expected"

(* --- binder rejections -------------------------------------------------- *)

let expect_reject shell sql =
  match Shell.exec shell sql with
  | _ -> Alcotest.failf "accepted: %s" sql
  | exception (Binder.Error _ | Minirel_sql.Parser.Error _ | Shell.Error _) -> ()

let test_binder_rejections () =
  let shell = fresh_shell () in
  let (_ : string -> Shell.result) = build_inventory shell in
  (* sum/avg need a numeric column *)
  expect_reject shell
    "select i.category, sum(i.label) from items i where (i.category = 1) group by i.category";
  expect_reject shell
    "select i.category, avg(i.label) from items i where (i.category = 1) group by i.category";
  (* DISTINCT and aggregates do not combine *)
  expect_reject shell
    "select distinct i.category, count(*) from items i where (i.category = 1) group by i.category";
  (* a plain select attr must be grouped when aggregates are present *)
  expect_reject shell
    "select i.ik, count(*) from items i where (i.category = 1) group by i.category";
  (* ORDER BY attrs must come from the select list under DISTINCT ... *)
  expect_reject shell
    "select distinct i.category from items i where (i.category = 1) order by i.price";
  (* ... and from the GROUP BY keys under aggregation *)
  expect_reject shell
    "select i.category, count(*) from items i where (i.category = 1) group by i.category \
     order by i.price"

(* --- seeded regression corpus ------------------------------------------ *)

(* Pinned torture campaigns covering all four shapes on both probe
   paths, single-engine and 4x4 sharded. Any future mismatch lands a
   new (seed, cfg) row here. *)
let corpus =
  [
    (42, 1, 1, Answer.Locked);
    (7, 1, 1, Answer.Epoch);
    (99, 4, 1, Answer.Locked);
    (1234, 4, 4, Answer.Epoch);
  ]

let test_seed_corpus () =
  List.iter
    (fun (seed, shards, domains, probe_path) ->
      let cfg =
        {
          (Torture.default_cfg ~seed) with
          Torture.events = 120;
          scale = 0.001;
          check_every = 40;
          shards;
          domains;
          probe_path;
        }
      in
      let o = if shards > 1 then Torture.run_sharded cfg else Torture.run cfg in
      if not (Torture.ok o) then
        Alcotest.failf "seed %d shards=%d domains=%d: %a" seed shards domains
          Torture.pp_outcome o)
    corpus

(* Digest reproducibility of the sharded campaign at 4 shards x 4
   domains with the shape classes in the mix. *)
let test_sharded_digest_4x4 () =
  let cfg =
    {
      (Torture.default_cfg ~seed:4242) with
      Torture.events = 100;
      scale = 0.001;
      shards = 4;
      domains = 4;
    }
  in
  let a = Torture.run_sharded cfg in
  let b = Torture.run_sharded cfg in
  check Alcotest.string "digest reproduces at 4x4" a.Torture.digest b.Torture.digest;
  check Alcotest.bool "clean" true (Torture.ok a && Torture.ok b)

let suite =
  [
    Alcotest.test_case "count/sum finalize exact ints" `Quick test_count_sum_exact_ints;
    Alcotest.test_case "sum turns float on float input" `Quick test_sum_goes_float;
    Alcotest.test_case "avg ships sum+count" `Quick test_avg_is_sum_plus_count;
    QCheck_alcotest.to_alcotest qcheck_merge_associative;
    Alcotest.test_case "remove inverts add" `Quick test_remove_inverts_add;
    Alcotest.test_case "min/max extremum delete rebuilds" `Quick
      test_minmax_remove_extremum_rebuilds;
    Alcotest.test_case "nulls skipped" `Quick test_nulls_skipped;
    Alcotest.test_case "of_tuples == incremental adds" `Quick
      test_of_tuples_matches_incremental;
    Alcotest.test_case "cmp is a total order" `Quick test_cmp_total_order;
    QCheck_alcotest.to_alcotest qcheck_top_k_vs_sort;
    QCheck_alcotest.to_alcotest qcheck_group_hash_vs_oracle;
    QCheck_alcotest.to_alcotest qcheck_engine_distinct;
    QCheck_alcotest.to_alcotest qcheck_engine_grouped;
    QCheck_alcotest.to_alcotest qcheck_engine_ordered;
    QCheck_alcotest.to_alcotest qcheck_engine_exists;
    Alcotest.test_case "exists witness from pmv" `Quick test_exists_witness_from_pmv;
    Alcotest.test_case "entry agg cache fresh after delete" `Quick
      test_entry_agg_cache_fresh_after_delete;
    Alcotest.test_case "probe_groups fast path" `Quick test_probe_groups_fast_path;
    QCheck_alcotest.to_alcotest qcheck_sharded_distinct;
    QCheck_alcotest.to_alcotest qcheck_sharded_grouped;
    QCheck_alcotest.to_alcotest qcheck_sharded_ordered;
    QCheck_alcotest.to_alcotest qcheck_sharded_exists;
    Alcotest.test_case "router probe_grouped" `Quick test_router_probe_grouped;
    Alcotest.test_case "grouped miss installs into router cache" `Quick
      test_grouped_miss_installs;
    Alcotest.test_case "partition-key update refused" `Quick
      test_partition_key_update_refused;
    Alcotest.test_case "shell distinct" `Quick test_shell_distinct;
    Alcotest.test_case "shell distinct limit after dedup" `Quick
      test_shell_distinct_limit_after_dedup;
    Alcotest.test_case "shell group by all aggregates" `Quick
      test_shell_group_by_all_aggregates;
    Alcotest.test_case "shell order by limit prefix" `Quick test_shell_order_by_limit_prefix;
    Alcotest.test_case "shell exists" `Quick test_shell_exists;
    Alcotest.test_case "shape telemetry counters" `Quick test_shape_counters;
    Alcotest.test_case "binder rejections" `Quick test_binder_rejections;
    Alcotest.test_case "seeded regression corpus" `Quick test_seed_corpus;
    Alcotest.test_case "sharded digest reproducible 4x4" `Quick test_sharded_digest_4x4;
  ]
