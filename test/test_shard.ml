(* Shard_router: merged answer streams vs the single-engine oracle,
   maintenance delta routing, per-shard telemetry labels/merging, the
   shell's merged METRICS view, first-k across shards, and a sharded
   torture smoke. *)

open Minirel_storage
open Minirel_query
module Engine = Minirel_engine.Engine
module Router = Minirel_engine.Shard_router
module Check = Minirel_check.Check
module Txn = Minirel_txn.Txn
module Registry = Minirel_telemetry.Registry
module Shell = Minirel_shell.Shell
module Torture = Minirel_check.Torture

let check = Alcotest.check
let vi i = Value.Int i

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Reference catalog plus a router over the r/s fixture: r
   hash-partitioned by the join key c, s by d — co-partitioned, so the
   join is shard-local — and the same rows loaded into both. *)
let make ?(shards = 3) () =
  let reference = Helpers.fresh_catalog () in
  Helpers.build_rs reference;
  let router = Router.create ~shards () in
  Router.declare router Helpers.r_schema ~part:(`Hash "c");
  Router.declare router Helpers.s_schema ~part:(`Hash "d");
  Router.load_from router reference;
  let compiled = Template.compile reference Helpers.eqt_spec in
  (reference, router, compiled)

let inst c ~fs ~gs =
  let dvs l = Instance.Dvalues (List.map vi (List.sort_uniq compare l)) in
  Instance.make c [| dvs fs; dvs gs |]

let route_answer router q ~on_tuple = fst (Router.answer router q ~on_tuple)

(* Mirror a change into both the router and the unsharded reference. *)
let mirror reference router change =
  ignore (Router.run router [ change ]);
  ignore (Txn.run (Txn.create reference) [ change ])

(* The qcheck property: the merged O2+O3 stream over N shards equals
   the single-engine ground truth as a multiset, with the DS
   exactly-once identity intact under summation — cold, warm, and
   after routed DML. *)
let prop_merged_stream =
  QCheck2.Test.make ~name:"merged shard stream == unsharded oracle" ~count:30
    QCheck2.Gen.(
      quad (int_range 1 4)
        (list_size (int_range 1 3) (int_range 0 9))
        (list_size (int_range 1 3) (int_range 0 7))
        (list_size (int_range 0 4) (int_range 0 39)))
    (fun (shards, fs, gs, inserts) ->
      let reference, router, compiled = make ~shards () in
      ignore (Router.create_view ~capacity:64 router compiled);
      let q = inst compiled ~fs ~gs in
      let judge () =
        Check.report_ok
          (Check.check_answer_via
             ~expected:(Check.ground_truth reference q)
             (route_answer router q))
      in
      let cold = judge () in
      let warm = judge () in
      (* routed inserts pin the partition key; the reference replays them *)
      List.iteri
        (fun i c ->
          mirror reference router
            (Txn.Insert
               {
                 rel = "r";
                 tuple = [| vi (1000 + i); vi c; vi (c mod 10); Value.Str "x" |];
               }))
        inserts;
      cold && warm && judge ())

let prop_first_k =
  QCheck2.Test.make ~name:"first-k across shards is k genuine results" ~count:20
    QCheck2.Gen.(pair (int_range 1 4) (int_range 0 7))
    (fun (shards, f) ->
      let reference, router, compiled = make ~shards () in
      ignore (Router.create_view ~capacity:64 router compiled);
      let q = inst compiled ~fs:[ f ] ~gs:[ f mod 8 ] in
      let truth = Check.ground_truth reference q in
      ignore (route_answer router q ~on_tuple:(fun _ _ -> ()));
      let k = min 3 (List.length truth) in
      k = 0
      ||
      let rows = Router.answer_first_k router q ~k in
      List.length rows = k
      && List.for_all (fun t -> List.exists (Tuple.equal t) truth) rows)

let count_matching e ~rel ~pos v =
  let heap = Minirel_index.Catalog.heap (Engine.catalog e) rel in
  Minirel_storage.Heap_file.fold heap
    (fun acc _ t -> if Value.equal t.(pos) v then acc + 1 else acc)
    0

let test_maintenance_routing () =
  let _, router, compiled = make ~shards:3 () in
  let views = Router.create_view ~capacity:64 router compiled in
  (* warm the views with the bcps the c=17 rows derive: r rows with
     c = 17 have f = rkey mod 10 = 7; s rows with d = 17 have g = 1 *)
  let q = inst compiled ~fs:[ 7 ] ~gs:[ 1 ] in
  ignore (route_answer router q ~on_tuple:(fun _ _ -> ()));
  let key = vi 17 in
  let owner = Router.shard_of_value router key in
  (* partition placement: only the owner holds c=17 rows *)
  List.iteri
    (fun i e ->
      let n = count_matching e ~rel:"r" ~pos:1 key in
      if i = owner then
        check Alcotest.bool "owner holds the rows" true (n > 0)
      else check Alcotest.int (Fmt.str "shard%d foreign rows" i) 0 n)
    (Router.shards router);
  let pred = Predicate.Cmp (Predicate.Eq, 1, key) in
  (* an update pinning the key runs on the owner alone *)
  let routed =
    Router.run router [ Txn.Update { rel = "r"; pred; set = [ (2, vi 5) ] } ]
  in
  check Alcotest.(list int) "update routed to owner" [ owner ]
    (List.map fst routed);
  (* modifying the partition key itself is refused *)
  (match Router.run router [ Txn.Update { rel = "r"; pred; set = [ (1, vi 3) ] } ]
   with
  | _ -> Alcotest.fail "partition-key update was not refused"
  | exception Invalid_argument _ -> ());
  (* a pinned delete runs on the owner alone, and its maintenance delta
     reaches exactly that shard's view: every view stays consistent
     with its own shard (a missed delta would leave stale tuples) *)
  let before = Array.map Pmv.View.n_tuples views in
  let routed = Router.run router [ Txn.Delete { rel = "r"; pred } ] in
  check Alcotest.(list int) "delete routed to owner" [ owner ]
    (List.map fst routed);
  List.iteri
    (fun i e ->
      check Alcotest.int (Fmt.str "shard%d rows purged" i) 0
        (count_matching e ~rel:"r" ~pos:1 key);
      check Alcotest.(list string)
        (Fmt.str "shard%d view consistent" i)
        []
        (Check.check_view views.(i) (Engine.catalog e));
      if i <> owner then
        check Alcotest.int
          (Fmt.str "shard%d view untouched" i)
          before.(i)
          (Pmv.View.n_tuples views.(i)))
    (Router.shards router)

let test_prometheus_labels_and_merge () =
  let _, router, compiled = make ~shards:2 () in
  ignore (Router.create_view ~capacity:64 router compiled);
  ignore
    (route_answer router (inst compiled ~fs:[ 1 ] ~gs:[ 1 ])
       ~on_tuple:(fun _ _ -> ()));
  let prom = Router.prometheus_string router in
  check Alcotest.bool "shard 0 labelled" true (contains prom "shard=\"0\"");
  check Alcotest.bool "shard 1 labelled" true (contains prom "shard=\"1\"");
  (* merged counters are the per-shard sums *)
  let per_shard = List.map snd (Router.snapshots router) in
  let merged_counters =
    List.filter_map
      (fun (name, v) ->
        match v with Registry.Counter n -> Some (name, n) | _ -> None)
      (Router.snapshot_merged router)
  in
  check Alcotest.bool "merged view has counters" true (merged_counters <> []);
  (* router-level sources ride along in the merged view but are not
     per-shard sums — the sum invariant covers the shard series only *)
  check Alcotest.bool "merged view has router affinity counters" true
    (List.mem_assoc "router.affinity.aff_hits" merged_counters);
  List.iter
    (fun (name, total) ->
      if not (String.length name >= 7 && String.sub name 0 7 = "router.") then
        let sum =
          List.fold_left
            (fun acc snap ->
              match List.assoc_opt name snap with
              | Some (Registry.Counter n) -> acc + n
              | _ -> acc)
            0 per_shard
        in
        check Alcotest.int name sum total)
    merged_counters

let test_shell_merged_metrics () =
  let _, router, _ = make ~shards:2 () in
  let shell = Shell.of_router router in
  ignore
    (Shell.exec shell
       "select r.rkey, s.e from r, s where r.c = s.d and (r.f = 1) and (s.g = 1)");
  match Shell.exec shell "metrics" with
  | Shell.Metrics text ->
      check Alcotest.bool "announces the merge" true
        (contains text "merged over 2 shards")
  | _ -> Alcotest.fail "expected a Metrics result"

let test_shell_sharded_matches_unsharded () =
  (* the same SQL against a sharded shell and a plain single-engine
     shell over identical data returns the same multiset *)
  let reference, router, _ = make ~shards:3 () in
  let sharded = Shell.of_router router in
  let plain = Shell.create reference in
  let sql =
    "select r.rkey, s.e from r, s where r.c = s.d and (r.f = 1) and (s.g = 1)"
  in
  let rows_of shell =
    match Shell.exec shell sql with
    | Shell.Rows { rows; _ } -> rows
    | _ -> Alcotest.fail "expected Rows"
  in
  let cold = rows_of sharded in
  let warm = rows_of sharded in
  let expect = rows_of plain in
  check Alcotest.bool "result not empty" true (expect <> []);
  check Helpers.tuples "cold sharded == unsharded" expect cold;
  check Helpers.tuples "warm sharded == unsharded" expect warm

let test_epoch_fast_path () =
  let reference, router, compiled = make ~shards:3 () in
  ignore (Router.create_view ~capacity:64 router compiled);
  Router.set_probe_path router Pmv.Answer.Epoch;
  let q = inst compiled ~fs:[ 1 ] ~gs:[ 1 ] in
  let collect () =
    let out = ref [] in
    ignore (route_answer router q ~on_tuple:(fun _ t -> out := t :: !out));
    List.sort Tuple.compare !out
  in
  let truth () = List.sort Tuple.compare (Check.ground_truth reference q) in
  let cold = collect () in
  let ps = Router.probe_stats router in
  check Alcotest.int "cold query falls back" 1 ps.Router.fallbacks;
  check Alcotest.int "no hit yet" 0 ps.Router.fast_hits;
  let warm = collect () in
  let ps = Router.probe_stats router in
  check Alcotest.int "warm repeat serves without fan-out" 1 ps.Router.fast_hits;
  check Alcotest.bool "cold matches truth" true
    (List.equal Tuple.equal cold (truth ()));
  check Alcotest.bool "fast-path answer matches truth" true
    (List.equal Tuple.equal warm (truth ()));
  check Alcotest.bool "probe latency recorded" true
    ((Router.probe_summary router).Minirel_telemetry.Histogram.count > 0);
  (* routed DML invalidates the cached answer: the next query must fall
     back and reflect the new data, never serve the stale install *)
  mirror reference router
    (Txn.Insert { rel = "r"; tuple = [| vi 3000; vi 1; vi 1; Value.Str "z" |] });
  let after = collect () in
  let ps = Router.probe_stats router in
  check Alcotest.int "post-DML query fell back" 2 ps.Router.fallbacks;
  check Alcotest.bool "post-DML answer matches fresh truth" true
    (List.equal Tuple.equal after (truth ()));
  Router.shutdown router

let test_probe_path_parity () =
  (* the same stream, answered under each read path, must be the same
     multiset query by query — the A/B contract the bench and pmvctl
     --probe-path rely on *)
  let _, router, compiled = make ~shards:2 () in
  ignore (Router.create_view ~capacity:64 router compiled);
  let queries =
    List.init 12 (fun i -> inst compiled ~fs:[ i mod 8 ] ~gs:[ (i + 3) mod 8 ])
  in
  let stream path =
    Router.set_probe_path router path;
    List.map
      (fun q ->
        let out = ref [] in
        ignore (route_answer router q ~on_tuple:(fun _ t -> out := t :: !out));
        List.sort Tuple.compare !out)
      (queries @ queries)
  in
  let locked = stream Pmv.Answer.Locked in
  let epoch = stream Pmv.Answer.Epoch in
  List.iteri
    (fun i (l, e) ->
      check Alcotest.bool (Fmt.str "query %d parity" i) true
        (List.equal Tuple.equal l e))
    (List.combine locked epoch);
  Router.shutdown router

let test_sharded_torture_smoke () =
  let cfg =
    { (Torture.default_cfg ~seed:11) with Torture.events = 120; shards = 3 }
  in
  let o = Torture.run_sharded cfg in
  if not (Torture.ok o) then
    Alcotest.failf "sharded torture not clean:@ %a" Torture.pp_outcome o;
  check Alcotest.int "no crash events in sharded campaign" 0 o.Torture.crashes;
  check Alcotest.bool "queries oracle-checked" true (o.Torture.queries > 0);
  check Alcotest.bool "txns committed" true (o.Torture.txns > 0)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_merged_stream;
    QCheck_alcotest.to_alcotest prop_first_k;
    Alcotest.test_case "maintenance deltas route to the owner" `Quick
      test_maintenance_routing;
    Alcotest.test_case "prometheus shard labels and merged counters" `Quick
      test_prometheus_labels_and_merge;
    Alcotest.test_case "shell METRICS merges shards" `Quick
      test_shell_merged_metrics;
    Alcotest.test_case "sharded shell matches unsharded shell" `Quick
      test_shell_sharded_matches_unsharded;
    Alcotest.test_case "epoch fast path: hit, telemetry, invalidation" `Quick
      test_epoch_fast_path;
    Alcotest.test_case "locked and epoch paths answer identically" `Quick
      test_probe_path_parity;
    Alcotest.test_case "sharded torture smoke" `Slow test_sharded_torture_smoke;
  ]
