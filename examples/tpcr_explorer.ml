(* Exploring a TPC-R-shaped warehouse with and without PMVs: the
   paper's Section 4.2 setting as an application. Shows what the user
   experiences — time to the first result tuple — for hot queries under
   plain execution vs. PMV-assisted answering, plus the effect of
   transactions in between.

   Run with: dune exec examples/tpcr_explorer.exe *)

open Minirel_storage
module Catalog = Minirel_index.Catalog
module Template = Minirel_query.Template
module Tpcr = Minirel_workload.Tpcr
module Querygen = Minirel_workload.Querygen
module Zipf = Minirel_workload.Zipf
module SM = Minirel_prng.Split_mix

let ms_opt = function
  | None -> "-"
  | Some ns -> Fmt.str "%.3f ms" (Int64.to_float ns /. 1e6)

let () =
  let pool = Buffer_pool.create ~capacity:2_000 () in
  let catalog = Catalog.create pool in
  let params = Tpcr.params_for_scale 0.02 in
  let counts = Tpcr.generate catalog params in
  Fmt.pr "warehouse: %d customers, %d orders, %d lineitems@." counts.Tpcr.customers
    counts.Tpcr.orders counts.Tpcr.lineitems;

  let t1 = Template.compile catalog Querygen.t1_spec in
  let view = Pmv.View.create ~capacity:2_000 ~f_max:3 ~name:"t1" t1 in
  let mgr = Minirel_txn.Txn.create catalog in
  Pmv.Maintain.attach view mgr;

  let dz = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07 in
  let sz = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07 in
  let rng = SM.create ~seed:17 in

  (* Warm-up: the analysts' morning queries. *)
  for _ = 1 to 300 do
    let q = Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng in
    ignore (Pmv.Answer.answer ~view catalog q ~on_tuple:(fun _ _ -> ()))
  done;
  Fmt.pr "after 300 warm-up queries: hit ratio %.2f, %d bcps cached@.@."
    (Pmv.View.hit_ratio view) (Pmv.View.n_entries view);

  (* Afternoon: hot exploration queries, measured both ways. *)
  Fmt.pr "%-8s %-14s %-14s %-10s %-10s@." "query" "first (plain)" "first (PMV)" "partials"
    "results";
  for i = 1 to 8 do
    let q = Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng in
    let plain = Pmv.Answer.answer_plain catalog q ~on_tuple:(fun _ _ -> ()) in
    let assisted = Pmv.Answer.answer ~view catalog q ~on_tuple:(fun _ _ -> ()) in
    let first_assisted =
      match assisted.Pmv.Answer.first_partial_ns with
      | Some _ as x -> x
      | None -> assisted.Pmv.Answer.first_exec_ns
    in
    Fmt.pr "%-8d %-14s %-14s %-10d %-10d@." i
      (ms_opt plain.Pmv.Answer.first_exec_ns)
      (ms_opt first_assisted) assisted.Pmv.Answer.partial_count
      assisted.Pmv.Answer.total_count
  done;

  (* A batch load lands: inserts are free for the PMV, deletes defer. *)
  let next = ref 90_000_000 in
  let batch =
    List.concat_map
      (fun _ ->
        incr next;
        [
          Minirel_txn.Txn.Insert
            {
              rel = "orders";
              tuple =
                [|
                  Value.Int !next;
                  Value.Int 1;
                  Value.Int (1 + SM.int rng ~bound:params.Tpcr.n_dates);
                  Value.Float 0.0;
                  Value.Str "";
                |];
            };
          Minirel_txn.Txn.Insert
            {
              rel = "lineitem";
              tuple =
                [|
                  Value.Int !next;
                  Value.Int (1 + SM.int rng ~bound:params.Tpcr.n_suppliers);
                  Value.Int 1;
                  Value.Int 1;
                  Value.Float 0.0;
                  Value.Str "";
                |];
            };
        ])
      (List.init 200 Fun.id)
  in
  ignore (Minirel_txn.Txn.run mgr batch);
  let s = Pmv.View.stats view in
  Fmt.pr "@.batch load of 400 rows: %d deferred (no PMV maintenance), PMV still serves:@."
    s.Pmv.View.skipped_inserts;
  let q = Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng in
  let st = Pmv.Answer.answer ~view catalog q ~on_tuple:(fun _ _ -> ()) in
  Fmt.pr "next query: %d partials / %d results, stale served: %d@."
    st.Pmv.Answer.partial_count st.Pmv.Answer.total_count st.Pmv.Answer.stale_purged
