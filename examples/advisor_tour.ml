(* Trace-driven PMV selection, end to end: run a day of SQL against a
   shop database with NO views, record the trace, ask the advisor which
   templates deserve a PMV under a memory budget, apply its
   recommendations, and replay the workload to see the difference.

   This is the Section 2.2 story (automatic view selection from query
   traces) adapted to partial materialized views.

   Run with: dune exec examples/advisor_tour.exe *)

module Shell = Minirel_shell.Shell
module Trace = Minirel_shell.Trace
module SM = Minirel_prng.Split_mix

let day_of_queries trace_shell rng zipf_cat zipf_store n =
  let hits = ref 0 and total_pmv = ref 0 in
  for _ = 1 to n do
    let c = Minirel_workload.Zipf.sample zipf_cat rng in
    let s = Minirel_workload.Zipf.sample zipf_store rng in
    let sql =
      match SM.int rng ~bound:3 with
      | 0 ->
          Fmt.str
            "select i.label, st.qty from items i, stock st where i.ik = st.ik and \
             (i.category = %d) and (st.store = %d)"
            c s
      | 1 ->
          Fmt.str
            "select i.ik, i.price from items i where (i.category = %d) order by i.price \
             desc limit 5"
            c
      | _ ->
          Fmt.str
            "select st.store, count(*) from items i, stock st where i.ik = st.ik and \
             (i.category in (%d, %d)) group by st.store"
            c ((c + 1) mod 8)
    in
    match Shell.exec trace_shell sql with
    | Shell.Rows { from_pmv; _ } ->
        total_pmv := !total_pmv + from_pmv;
        if from_pmv > 0 then incr hits
    | Shell.Grouped { partial_groups; _ } -> if partial_groups <> [] then incr hits
    | _ -> ()
  done;
  (!hits, !total_pmv)

let build_shop ~auto_views =
  let shell = Shell.create ~auto_views (Helpers_catalog.fresh ()) in
  ignore (Shell.exec shell "create table items (ik int, category int, price float, label string)");
  ignore (Shell.exec shell "create table stock (ik int, store int, qty int)");
  List.iter
    (fun sql -> ignore (Shell.exec shell sql))
    [
      "create index items_ik on items (ik)";
      "create index items_category on items (category)";
      "create index stock_ik on stock (ik)";
      "create index stock_store on stock (store)";
    ];
  for ik = 1 to 600 do
    ignore
      (Shell.exec shell
         (Fmt.str "insert into items values (%d, %d, %d.9, 'item %d')" ik (ik mod 8)
            (ik * 3) ik));
    ignore
      (Shell.exec shell (Fmt.str "insert into stock values (%d, %d, %d)" ik (ik mod 6) (ik mod 9)))
  done;
  shell

let () =
  let rng = SM.create ~seed:77 in
  let zipf_cat = Minirel_workload.Zipf.create ~n:8 ~alpha:1.2 in
  let zipf_store = Minirel_workload.Zipf.create ~n:6 ~alpha:1.2 in

  (* day 1: no PMVs at all, but record the trace *)
  let shell = build_shop ~auto_views:false in
  let trace = Trace.create () in
  Trace.attach trace shell;
  let day1_hits, _ = day_of_queries shell rng zipf_cat zipf_store 300 in
  Fmt.pr "day 1 (no PMVs): %d of 300 queries got early partial results@." day1_hits;
  Fmt.pr "trace recorded: %d statements@.@." (Trace.length trace);

  (* the advisor studies the trace *)
  let advisor = Pmv.Advisor.create () in
  let observed = Trace.observe trace (Shell.session shell) advisor in
  Fmt.pr "advisor observed %d queries across %d templates; recommendations under 512 KB:@."
    observed (Pmv.Advisor.n_templates advisor);
  let recs = Pmv.Advisor.recommend advisor ~budget_bytes:524_288 in
  List.iter (fun r -> Fmt.pr "  %a@." Pmv.Advisor.pp_recommendation r) recs;
  let created = Pmv.Advisor.apply advisor (Shell.manager shell) recs in
  Fmt.pr "created %d views@.@." created;

  (* day 2: same query pattern, now with the advised PMVs *)
  let day2_hits, day2_tuples = day_of_queries shell rng zipf_cat zipf_store 300 in
  Fmt.pr "day 2 (advised PMVs): %d of 300 queries got early partial results (%d tuples)@."
    day2_hits day2_tuples;
  Fmt.pr "@.%a@." Pmv.Manager.pp_report (Shell.manager shell)
