(* The full stack as an application would use it: SQL text in, partial
   results out. A Session parses and binds queries, caching compiled
   templates by structure; a Pmv.Manager keeps one budgeted PMV per
   template; transactions keep everything consistent.

   This is the paper's form-based-application story: every query a form
   emits has the same shape with different constants, so the second
   user of any form gets the hot rows back within microseconds.

   Run with: dune exec examples/sql_workbench.exe *)

open Minirel_storage
module Catalog = Minirel_index.Catalog
module Session = Minirel_sql.Session
module Manager = Pmv.Manager
module Template = Minirel_query.Template
module SM = Minirel_prng.Split_mix

let () =
  (* a TPC-R-flavoured warehouse *)
  let pool = Buffer_pool.create ~capacity:3_000 () in
  let catalog = Catalog.create pool in
  let params = Minirel_workload.Tpcr.params_for_scale 0.01 in
  let counts = Minirel_workload.Tpcr.generate catalog params in
  Fmt.pr "warehouse: %d orders, %d lineitems (dates 1..%d, suppliers 1..%d)@.@."
    counts.Minirel_workload.Tpcr.orders counts.Minirel_workload.Tpcr.lineitems
    params.Minirel_workload.Tpcr.n_dates params.Minirel_workload.Tpcr.n_suppliers;

  let session = Session.create catalog in
  (* interval-form conditions on totalprice get data-derived dividing
     values (equi-depth over the column) *)
  Session.set_grid_from_data session ~rel:"orders" ~attr:"totalprice" ~bins:12;

  let manager = Manager.create catalog in
  let mgr = Minirel_txn.Txn.create catalog in
  Manager.attach_maintenance manager mgr;

  (* two "forms": daily sales lookup and a price-band explorer *)
  let form_daily d s =
    Fmt.str
      "select o.orderkey, l.quantity, l.extendedprice from orders o, lineitem l where \
       o.orderkey = l.orderkey and (o.orderdate = %d) and (l.suppkey = %d)"
      d s
  in
  let form_priceband d lo hi =
    Fmt.str
      "select o.orderkey, o.totalprice from orders o, lineitem l where o.orderkey = \
       l.orderkey and (o.orderdate = %d) and (o.totalprice between %d and %d)"
      d lo hi
  in

  let run_sql sql =
    let compiled, inst = Session.query session sql in
    (* first query of a new template: give it a 256 KB PMV *)
    let template = compiled.Template.spec.Template.name in
    if Manager.find manager ~template = None then begin
      let view = Manager.create_view ~ub_bytes:262_144 ~f_max:3 manager compiled in
      Fmt.pr "  [new template %s -> PMV of %d entries]@." template
        (Pmv.Entry_store.capacity (Pmv.View.store view))
    end;
    let partial = ref 0 and total = ref 0 in
    let stats, _ =
      Manager.answer manager inst ~on_tuple:(fun phase _ ->
          incr total;
          if phase = Pmv.Answer.Partial then incr partial)
    in
    (!partial, !total, stats)
  in

  (* a morning of form submissions: hot dates and suppliers repeat *)
  let rng = SM.create ~seed:11 in
  let dz = Minirel_workload.Zipf.create ~n:params.Minirel_workload.Tpcr.n_dates ~alpha:1.1 in
  let sz =
    Minirel_workload.Zipf.create ~n:params.Minirel_workload.Tpcr.n_suppliers ~alpha:1.1
  in
  for _ = 1 to 150 do
    let d = 1 + Minirel_workload.Zipf.sample dz rng in
    let s = 1 + Minirel_workload.Zipf.sample sz rng in
    ignore (run_sql (form_daily d s));
    if SM.int rng ~bound:3 = 0 then begin
      let lo = 1000 * SM.int rng ~bound:100 in
      ignore (run_sql (form_priceband d lo (lo + 100_000)))
    end
  done;
  Fmt.pr "@.after 150+ form submissions (%d distinct templates):@.@."
    (Session.n_templates session);
  Fmt.pr "%a@." Manager.pp_report manager;

  (* a repeated hot submission: partials arrive before execution *)
  let partial, total, stats = run_sql (form_daily 1 1) in
  Fmt.pr "hot form replay: %d of %d rows served from the PMV%a@." partial total
    Fmt.(
      option (fun ppf ns -> pf ppf " (first after %.1f µs)" (Int64.to_float ns /. 1e3)))
    stats.Pmv.Answer.first_partial_ns
