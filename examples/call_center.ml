(* The paper's motivating scenario (Section 1): a retailer's customer
   service call center. When a customer calls, the operator queries for
   on-sale items related to the customer's recent purchases:

     from the [related] relation, the items related to a purchased item;
     from [sale], the items currently on sale with discount >= p%.

   The operator starts making offers from the *partial* results; once
   they find enough to talk about, the remaining results are not needed
   (early termination, the paper's Benefit 2). The discount threshold p
   is an interval-form condition, discretised into basic intervals.

   Run with: dune exec examples/call_center.exe *)

open Minirel_storage
open Minirel_query
module Catalog = Minirel_index.Catalog
module SM = Minirel_prng.Split_mix

let () =
  let pool = Buffer_pool.create ~capacity:2_000 () in
  let catalog = Catalog.create pool in
  let rng = SM.create ~seed:9 in

  (* related(item, related_item): catalogue cross-sell graph *)
  let related =
    Schema.create "related" [ ("item", Schema.Tint); ("related_item", Schema.Tint) ]
  in
  (* sale(item, discount, store): items currently on sale *)
  let sale =
    Schema.create "sale"
      [ ("item", Schema.Tint); ("discount", Schema.Tint); ("store", Schema.Tint) ]
  in
  let _ = Catalog.create_relation catalog related in
  let _ = Catalog.create_relation catalog sale in
  let n_items = 3_000 in
  for item = 1 to n_items do
    (* each item relates to ~6 pseudo-random others *)
    for _ = 1 to 6 do
      ignore
        (Catalog.insert catalog ~rel:"related"
           [| Value.Int item; Value.Int (1 + SM.int rng ~bound:n_items) |])
    done
  done;
  for _ = 1 to 4_000 do
    ignore
      (Catalog.insert catalog ~rel:"sale"
         [|
           Value.Int (1 + SM.int rng ~bound:n_items);
           Value.Int (5 + (5 * SM.int rng ~bound:10));  (* 5..50 % *)
           Value.Int (SM.int rng ~bound:5);
         |])
  done;
  ignore (Catalog.create_index catalog ~rel:"related" ~name:"related_item" ~attrs:[ "item" ] ());
  ignore
    (Catalog.create_index catalog ~rel:"related" ~name:"related_target"
       ~attrs:[ "related_item" ] ());
  ignore (Catalog.create_index catalog ~rel:"sale" ~name:"sale_item" ~attrs:[ "item" ] ());
  ignore (Catalog.create_index catalog ~rel:"sale" ~name:"sale_discount" ~attrs:[ "discount" ] ());

  (* The template: items related to a purchased item that are on sale
     with discount in a customer-loyalty-dependent range. The discount
     condition is interval-form; the UI's from/to lists (10/20/30/40%)
     serve as dividing values (Section 3.1). *)
  let grid =
    Discretize.of_from_to_lists
      ~from_values:[ Value.Int 10; Value.Int 20; Value.Int 30 ]
      ~to_values:[ Value.Int 40 ]
  in
  let spec =
    {
      Template.name = "offers";
      relations = [| "related"; "sale" |];
      joins =
        [ (Template.attr_ref ~rel:0 ~attr:"related_item", Template.attr_ref ~rel:1 ~attr:"item") ];
      fixed = [];
      select_list =
        [ Template.attr_ref ~rel:1 ~attr:"item"; Template.attr_ref ~rel:1 ~attr:"store" ];
      selections =
        [|
          Template.Eq_sel (Template.attr_ref ~rel:0 ~attr:"item");
          Template.Range_sel (Template.attr_ref ~rel:1 ~attr:"discount", grid);
        |];
    }
  in
  let compiled = Template.compile catalog spec in
  let view = Pmv.View.create ~capacity:500 ~f_max:3 ~name:"offers" compiled in
  let mgr = Minirel_txn.Txn.create catalog in
  Pmv.Maintain.attach view mgr;

  (* Simulate a day of calls. Purchases are Zipf-hot: everyone buys the
     bestsellers, so their related-items lookups share PMV entries. *)
  let zipf = Minirel_workload.Zipf.create ~n:n_items ~alpha:1.05 in
  let offers_needed = 3 in
  let calls = 400 in
  let served_from_pmv = ref 0 and early_terminations = ref 0 in
  let exception Enough in
  for _ = 1 to calls do
    let purchased =
      List.map
        (fun r -> Value.Int (1 + r))
        (SM.distinct rng ~n:2 (Minirel_workload.Zipf.sample zipf))
    in
    let loyalty_threshold = if SM.bool rng then 10 else 20 in
    let query =
      Instance.make compiled
        [|
          Instance.Dvalues purchased;
          Instance.Dintervals [ Interval.at_least (Value.Int loyalty_threshold) ];
        |]
    in
    let offers = ref [] in
    (try
       ignore
         (Pmv.Answer.answer ~view catalog query ~on_tuple:(fun phase t ->
              offers := t :: !offers;
              if phase = Pmv.Answer.Partial then incr served_from_pmv;
              (* the operator hangs up the query as soon as they have
                 enough offers to make *)
              if List.length !offers >= offers_needed then raise Enough))
     with Enough -> incr early_terminations)
  done;
  let stats = Pmv.View.stats view in
  Fmt.pr "calls handled:              %d@." calls;
  Fmt.pr "offers served from the PMV: %d@." !served_from_pmv;
  Fmt.pr "early terminations:         %d (operator had %d offers before the query finished)@."
    !early_terminations offers_needed;
  Fmt.pr "PMV hit ratio:              %.2f@." (Pmv.View.hit_ratio view);
  Fmt.pr "PMV size:                   %d bcps, %d tuples@." (Pmv.View.n_entries view)
    (Pmv.View.n_tuples view);
  ignore stats;

  (* Prices change: a flash sale ends. Deletes defer-maintain the PMV;
     the next queries stay transactionally consistent. *)
  ignore
    (Minirel_txn.Txn.run mgr
       [
         Minirel_txn.Txn.Delete
           { rel = "sale"; pred = Predicate.Cmp (Predicate.Ge, 1, Value.Int 40) };
       ]);
  Fmt.pr "@.after the 40%%+ flash sale ended: %d tuples were dropped from the PMV@."
    (Pmv.View.stats view).Pmv.View.maint_removed;
  let check_query =
    Instance.make compiled
      [|
        Instance.Dvalues [ Value.Int 1 ];
        Instance.Dintervals [ Interval.at_least (Value.Int 40) ];
      |]
  in
  let leftover = ref 0 in
  let st = Pmv.Answer.answer ~view catalog check_query ~on_tuple:(fun _ _ -> incr leftover) in
  Fmt.pr "a 40%%+ query now returns %d offers (stale served: %d)@." !leftover
    st.Pmv.Answer.stale_purged
