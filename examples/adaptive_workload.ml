(* The PMV adapts to query-pattern change (Section 3.2: "we continuously
   update the content in the PMV to adapt to the current query
   pattern"). The workload's hot region shifts abruptly; the CLOCK- and
   2Q-managed PMVs recover their hit ratios at different speeds.

   Run with: dune exec examples/adaptive_workload.exe *)

open Minirel_storage
open Minirel_query
module Catalog = Minirel_index.Catalog
module SM = Minirel_prng.Split_mix
module Zipf = Minirel_workload.Zipf

let build_catalog () =
  let pool = Buffer_pool.create ~capacity:2_000 () in
  let catalog = Catalog.create pool in
  let r = Schema.create "r" [ ("k", Schema.Tint); ("f", Schema.Tint); ("v", Schema.Tint) ] in
  let s = Schema.create "s" [ ("k", Schema.Tint); ("g", Schema.Tint); ("w", Schema.Tint) ] in
  let _ = Catalog.create_relation catalog r in
  let _ = Catalog.create_relation catalog s in
  let n_f = 400 and n_g = 50 in
  for i = 1 to 12_000 do
    ignore
      (Catalog.insert catalog ~rel:"r"
         [| Value.Int (i mod 499); Value.Int (i mod n_f); Value.Int i |])
  done;
  for i = 1 to 4_000 do
    ignore
      (Catalog.insert catalog ~rel:"s"
         [| Value.Int (i mod 499); Value.Int (i mod n_g); Value.Int i |])
  done;
  ignore (Catalog.create_index catalog ~rel:"r" ~name:"r_f" ~attrs:[ "f" ] ());
  ignore (Catalog.create_index catalog ~rel:"r" ~name:"r_k" ~attrs:[ "k" ] ());
  ignore (Catalog.create_index catalog ~rel:"s" ~name:"s_k" ~attrs:[ "k" ] ());
  ignore (Catalog.create_index catalog ~rel:"s" ~name:"s_g" ~attrs:[ "g" ] ());
  (catalog, n_f, n_g)

let spec =
  {
    Template.name = "adaptive";
    relations = [| "r"; "s" |];
    joins = [ (Template.attr_ref ~rel:0 ~attr:"k", Template.attr_ref ~rel:1 ~attr:"k") ];
    fixed = [];
    select_list = [ Template.attr_ref ~rel:0 ~attr:"v"; Template.attr_ref ~rel:1 ~attr:"w" ];
    selections =
      [|
        Template.Eq_sel (Template.attr_ref ~rel:0 ~attr:"f");
        Template.Eq_sel (Template.attr_ref ~rel:1 ~attr:"g");
      |];
  }

(* Hot region = an offset into the value domains; shifting the offset
   makes yesterday's hot bcps cold. *)
let gen compiled ~n_f ~n_g ~offset zipf rng =
  let pick_f = (offset + Zipf.sample zipf rng) mod n_f in
  let pick_g = ((offset / 3) + Zipf.sample zipf rng) mod n_g in
  Instance.make compiled
    [| Instance.Dvalues [ Value.Int pick_f ]; Instance.Dvalues [ Value.Int pick_g ] |]

let run_policy policy_name policy =
  let catalog, n_f, n_g = build_catalog () in
  let compiled = Template.compile catalog spec in
  let view = Pmv.View.create ~policy ~capacity:60 ~f_max:2 ~name:policy_name compiled in
  let zipf = Zipf.create ~n:40 ~alpha:1.3 in
  let rng = SM.create ~seed:33 in
  let window = 250 in
  let phase_hits offset =
    let hits = ref 0 in
    for _ = 1 to window do
      let q = gen compiled ~n_f ~n_g ~offset zipf rng in
      let st = Pmv.Answer.answer ~view catalog q ~on_tuple:(fun _ _ -> ()) in
      if st.Pmv.Answer.probe_hits > 0 && st.Pmv.Answer.partial_count > 0 then incr hits
    done;
    float_of_int !hits /. float_of_int window
  in
  (* steady state on pattern A, then the shift to pattern B *)
  let a1 = phase_hits 0 in
  let a2 = phase_hits 0 in
  let b1 = phase_hits 200 in
  let b2 = phase_hits 200 in
  let b3 = phase_hits 200 in
  Fmt.pr "%-8s %-10.2f %-10.2f | shift | %-10.2f %-10.2f %-10.2f@." policy_name a1 a2 b1 b2
    b3

let () =
  Fmt.pr "hit ratio per %d-query window; the hot region shifts after window 2@." 250;
  Fmt.pr "%-8s %-10s %-10s | shift | %-10s %-10s %-10s@." "policy" "w1" "w2" "w3" "w4" "w5";
  List.iter
    (fun kind -> run_policy (Minirel_cache.Policies.to_string kind) kind)
    [ Minirel_cache.Policies.Clock; Minirel_cache.Policies.Two_q;
      Minirel_cache.Policies.Lru; Minirel_cache.Policies.Fifo ]
