(* Quickstart: build a tiny database, define a query template, create a
   partial materialized view for it, and watch the second query get its
   hot results instantly.

   Run with: dune exec examples/quickstart.exe *)

open Minirel_storage
open Minirel_query
module Catalog = Minirel_index.Catalog

let () =
  (* 1. An engine: a buffer pool and a catalog. *)
  let pool = Buffer_pool.create ~capacity:1_000 () in
  let catalog = Catalog.create pool in
  (* quickstart uses a seeded PRNG so the output is reproducible *)

  (* 2. Two relations: products and sales, joined on product id. *)
  let products =
    Schema.create "products"
      [ ("pid", Schema.Tint); ("category", Schema.Tint); ("name", Schema.Tstr) ]
  in
  let sales =
    Schema.create "sales"
      [ ("pid", Schema.Tint); ("store", Schema.Tint); ("amount", Schema.Tint) ]
  in
  let _ = Catalog.create_relation catalog products in
  let _ = Catalog.create_relation catalog sales in
  for pid = 1 to 200 do
    ignore
      (Catalog.insert catalog ~rel:"products"
         [| Value.Int pid; Value.Int (pid mod 10); Value.Str (Fmt.str "product-%d" pid) |])
  done;
  let rng = Minirel_prng.Split_mix.create ~seed:1 in
  for _ = 1 to 2_000 do
    let ri bound = Minirel_prng.Split_mix.int rng ~bound in
    ignore
      (Catalog.insert catalog ~rel:"sales"
         [| Value.Int (1 + ri 200); Value.Int (ri 20); Value.Int (ri 97) |])
  done;
  (* Indexes on every selection/join attribute, as the paper assumes. *)
  ignore (Catalog.create_index catalog ~rel:"products" ~name:"products_pid" ~attrs:[ "pid" ] ());
  ignore
    (Catalog.create_index catalog ~rel:"products" ~name:"products_category"
       ~attrs:[ "category" ] ());
  ignore (Catalog.create_index catalog ~rel:"sales" ~name:"sales_pid" ~attrs:[ "pid" ] ());
  ignore (Catalog.create_index catalog ~rel:"sales" ~name:"sales_store" ~attrs:[ "store" ] ());

  (* 3. A query template (the paper's qt):
        select p.name, s.amount from products p, sales s
        where p.pid = s.pid
          and (p.category = c1 or ...) and (s.store = t1 or ...)      *)
  let spec =
    {
      Template.name = "sales_by_category_store";
      relations = [| "products"; "sales" |];
      joins = [ (Template.attr_ref ~rel:0 ~attr:"pid", Template.attr_ref ~rel:1 ~attr:"pid") ];
      fixed = [];
      select_list =
        [ Template.attr_ref ~rel:0 ~attr:"name"; Template.attr_ref ~rel:1 ~attr:"amount" ];
      selections =
        [|
          Template.Eq_sel (Template.attr_ref ~rel:0 ~attr:"category");
          Template.Eq_sel (Template.attr_ref ~rel:1 ~attr:"store");
        |];
    }
  in
  let compiled = Template.compile catalog spec in

  (* 4. A PMV manager (it also wires the engine into the telemetry
        registry) with one view: at most 100 basic condition parts,
        F = 2 tuples each. Queries run under the Section 3.6 S-lock. *)
  let manager = Pmv.Manager.create catalog in
  let view = Pmv.Manager.create_view ~capacity:100 ~f_max:2 manager compiled in
  let locks = Minirel_txn.Lock_manager.create () in
  Minirel_txn.Lock_manager.register_telemetry locks;

  (* 5. Queries. The first one runs cold and fills the PMV for free;
        the second gets its hot results back in O2, before execution. *)
  let query = Instance.make compiled
      [| Instance.Dvalues [ Value.Int 3; Value.Int 4 ]; Instance.Dvalues [ Value.Int 7 ] |]
  in
  let run label =
    let partial = ref 0 and total = ref 0 in
    let stats, _used_view =
      Pmv.Manager.answer ~locks manager query ~on_tuple:(fun phase t ->
          incr total;
          match phase with
          | Pmv.Answer.Partial ->
              incr partial;
              if !partial <= 3 then
                Fmt.pr "  [partial] %a@." Tuple.pp (Template.visible_of_result compiled t)
          | Pmv.Answer.Remaining -> ())
    in
    Fmt.pr "%s: %d results, %d served from the PMV before execution%a@." label !total
      !partial
      Fmt.(
        option (fun ppf ns ->
            pf ppf " (first partial after %.1f µs)" (Int64.to_float ns /. 1e3)))
      stats.Pmv.Answer.first_partial_ns
  in
  run "query 1 (cold PMV)";
  run "query 2 (warm PMV)";
  Fmt.pr "PMV now holds %d basic condition parts, %d tuples, ~%d bytes@."
    (Pmv.View.n_entries view) (Pmv.View.n_tuples view) (Pmv.View.size_bytes view);

  (* 6. What the telemetry saw: every engine layer reported through one
        registry (see DESIGN.md, "Telemetry"). *)
  let module Tm = Minirel_telemetry.Telemetry in
  let module R = Minirel_telemetry.Registry in
  let snapshot = Tm.snapshot () in
  Fmt.pr "@.telemetry (%d metrics from sources [%a]):@."
    (List.length snapshot)
    Fmt.(list ~sep:comma string)
    (R.source_names R.default);
  List.iter
    (fun name ->
      match R.find snapshot name with
      | Some v -> Fmt.pr "  %-28s %a@." name R.pp_value v
      | None -> ())
    [
      "answer.queries";
      "answer.ttft_ns";
      "bufferpool.reads";
      "exec.root_tuples";
      "lockmgr.acquires";
      "plancache.hits";
      "pmv.sales_by_category_store.partial_tuples";
    ]
