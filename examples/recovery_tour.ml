(* Durability for the engine underneath the PMVs: snapshot + redo log.
   A shop database takes a snapshot, keeps logging transactions, and
   then "crashes"; the recovered catalog is bit-for-bit the live one,
   and PMVs rebuilt on top of it warm up from queries as usual (PMV
   content itself needs no recovery: it is a cache, deferred-filled).

   Run with: dune exec examples/recovery_tour.exe *)

open Minirel_storage
module Catalog = Minirel_index.Catalog
module Snapshot = Minirel_index.Snapshot
module Txn = Minirel_txn.Txn
module Wal = Minirel_txn.Wal
module Template = Minirel_query.Template
module Instance = Minirel_query.Instance
module Predicate = Minirel_query.Predicate
module SM = Minirel_prng.Split_mix

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let spec =
  {
    Template.name = "orders_by_status_region";
    relations = [| "orders2"; "region" |];
    joins = [ (Template.attr_ref ~rel:0 ~attr:"rid", Template.attr_ref ~rel:1 ~attr:"rid") ];
    fixed = [];
    select_list =
      [ Template.attr_ref ~rel:0 ~attr:"oid"; Template.attr_ref ~rel:1 ~attr:"name" ];
    selections =
      [|
        Template.Eq_sel (Template.attr_ref ~rel:0 ~attr:"status");
        Template.Eq_sel (Template.attr_ref ~rel:1 ~attr:"zone");
      |];
  }

let () =
  let snap = tmp "pmv_recovery.snapshot" and log = tmp "pmv_recovery.wal" in
  if Sys.file_exists log then Sys.remove log;
  let pool = Buffer_pool.create ~capacity:2_000 () in
  let catalog = Catalog.create pool in
  let orders =
    Schema.create "orders2"
      [ ("oid", Schema.Tint); ("rid", Schema.Tint); ("status", Schema.Tint) ]
  in
  let region =
    Schema.create "region"
      [ ("rid", Schema.Tint); ("zone", Schema.Tint); ("name", Schema.Tstr) ]
  in
  let _ = Catalog.create_relation catalog orders in
  let _ = Catalog.create_relation catalog region in
  let rng = SM.create ~seed:3 in
  for rid = 1 to 20 do
    ignore
      (Catalog.insert catalog ~rel:"region"
         [| Value.Int rid; Value.Int (rid mod 4); Value.Str (Fmt.str "region-%d" rid) |])
  done;
  for oid = 1 to 2_000 do
    ignore
      (Catalog.insert catalog ~rel:"orders2"
         [| Value.Int oid; Value.Int (1 + SM.int rng ~bound:20); Value.Int (SM.int rng ~bound:5) |])
  done;
  List.iter
    (fun (rel, name, attrs) -> ignore (Catalog.create_index catalog ~rel ~name ~attrs ()))
    [
      ("orders2", "orders2_status", [ "status" ]);
      ("orders2", "orders2_rid", [ "rid" ]);
      ("region", "region_rid", [ "rid" ]);
      ("region", "region_zone", [ "zone" ]);
    ];

  (* checkpoint, then keep working with the log attached *)
  Snapshot.save catalog ~filename:snap;
  Fmt.pr "checkpoint: %d bytes of snapshot@." (Unix.stat snap).Unix.st_size;
  let mgr = Txn.create catalog in
  let wal = Wal.open_log ~filename:log () in
  Wal.attach wal mgr;
  for i = 1 to 150 do
    ignore
      (Txn.run mgr
         [
           Txn.Insert
             {
               rel = "orders2";
               tuple =
                 [| Value.Int (10_000 + i); Value.Int (1 + SM.int rng ~bound:20); Value.Int 1 |];
             };
         ]);
    if i mod 30 = 0 then
      ignore
        (Txn.run mgr
           [
             Txn.Delete
               { rel = "orders2"; pred = Predicate.Cmp (Predicate.Eq, 0, Value.Int (i * 7)) };
           ])
  done;
  Wal.close wal;
  let live_count = Heap_file.n_tuples (Catalog.heap catalog "orders2") in
  Fmt.pr "after 150+ logged transactions: %d orders live@." live_count;

  (* CRASH. Recover from snapshot + log. *)
  let pool2 = Buffer_pool.create ~capacity:2_000 () in
  let recovered = Snapshot.load ~pool:pool2 ~filename:snap in
  let replayed = Wal.replay recovered ~filename:log in
  Fmt.pr "recovered: %d changes replayed, %d orders live@." replayed
    (Heap_file.n_tuples (Catalog.heap recovered "orders2"));
  Catalog.validate recovered;
  Fmt.pr "catalog integrity check (fsck): ok@.";
  assert (live_count = Heap_file.n_tuples (Catalog.heap recovered "orders2"));

  (* PMVs are caches: rebuilt empty, they re-learn from the workload *)
  let compiled = Template.compile recovered spec in
  let view = Pmv.View.create ~capacity:200 ~f_max:3 ~name:"recovered" compiled in
  let q =
    Instance.make compiled [| Instance.Dvalues [ Value.Int 1 ]; Instance.Dvalues [ Value.Int 2 ] |]
  in
  ignore (Pmv.Answer.answer ~view recovered q ~on_tuple:(fun _ _ -> ()));
  let st = Pmv.Answer.answer ~view recovered q ~on_tuple:(fun _ _ -> ()) in
  Fmt.pr "PMV on the recovered catalog: %d partials on the second query@."
    st.Pmv.Answer.partial_count;
  Sys.remove snap;
  Sys.remove log
