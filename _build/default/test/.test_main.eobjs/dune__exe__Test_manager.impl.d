test/test_manager.ml: Alcotest Array Discretize Helpers Instance Interval List Minirel_index Minirel_query Minirel_storage Minirel_txn Pmv Template Value
