test/test_btree.ml: Alcotest Array Fmt Hashtbl Helpers Int List Minirel_index Minirel_storage Option QCheck2 QCheck_alcotest Rid Tuple Value
