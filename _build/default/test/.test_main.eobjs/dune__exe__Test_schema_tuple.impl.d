test/test_schema_tuple.ml: Alcotest Array Fun Helpers List Minirel_storage QCheck2 QCheck_alcotest Schema Tuple Value
