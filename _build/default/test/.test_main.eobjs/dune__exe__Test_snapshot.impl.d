test/test_snapshot.ml: Alcotest Buffer_pool Filename Heap_file Helpers List Minirel_index Minirel_query Minirel_storage Pmv Schema String Sys Value
