test/test_predicate.ml: Alcotest Int Interval List Minirel_query Minirel_storage Predicate Tuple Value
