test/test_heap.ml: Alcotest Array Buffer_pool Hashtbl Heap_file Helpers Int Io_stats List Minirel_storage QCheck2 QCheck_alcotest Rid Schema Tuple Value
