test/test_template.ml: Alcotest Array Discretize Helpers Instance Interval List Minirel_query Minirel_storage Predicate Template Tuple Value
