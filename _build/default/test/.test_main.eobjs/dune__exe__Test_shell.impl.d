test/test_shell.ml: Alcotest Array Fmt Helpers List Minirel_shell Minirel_sql Minirel_storage Printexc QCheck2 QCheck_alcotest String Value
