test/test_workload.ml: Alcotest Array Condition_part Discretize Hashtbl Heap_file Helpers Instance Int Interval List Minirel_index Minirel_query Minirel_storage Minirel_workload Option Template Value
