test/test_interval.ml: Alcotest Interval Minirel_query Minirel_storage QCheck2 QCheck_alcotest Value
