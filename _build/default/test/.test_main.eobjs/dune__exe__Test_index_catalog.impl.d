test/test_index_catalog.ml: Alcotest Heap_file Helpers List Minirel_index Minirel_storage Minirel_workload QCheck2 QCheck_alcotest Rid Schema Tuple Value
