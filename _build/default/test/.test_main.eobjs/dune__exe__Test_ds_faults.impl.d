test/test_ds_faults.ml: Alcotest Helpers Instance List Minirel_query Minirel_storage Minirel_txn Minirel_workload Pmv Predicate Template Value
