test/test_txn.ml: Alcotest Array Heap_file Helpers List Minirel_index Minirel_query Minirel_storage Minirel_txn Predicate Value
