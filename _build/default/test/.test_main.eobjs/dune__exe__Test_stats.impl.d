test/test_stats.ml: Alcotest Array Fmt Helpers Instance Interval List Minirel_exec Minirel_index Minirel_query Minirel_storage Minirel_workload String Template Value
