test/test_matview.ml: Alcotest Array Heap_file Helpers Instance List Minirel_index Minirel_matview Minirel_query Minirel_storage Minirel_txn Predicate QCheck2 QCheck_alcotest Template Tuple Value
