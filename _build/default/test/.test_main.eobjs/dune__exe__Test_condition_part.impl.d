test/test_condition_part.ml: Alcotest Array Bcp Condition_part Discretize Helpers Instance Int Interval List Minirel_query Minirel_storage QCheck2 QCheck_alcotest Template Value
