test/helpers.ml: Alcotest Array Buffer_pool Fmt Heap_file Instance List Minirel_index Minirel_query Minirel_storage Option Pmv Predicate Schema Template Tuple Value
