test/test_buffer_pool.ml: Alcotest Buffer_pool Io_stats Minirel_storage
