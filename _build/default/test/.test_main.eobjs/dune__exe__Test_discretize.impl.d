test/test_discretize.ml: Alcotest Discretize Fun Interval List Minirel_query Minirel_storage QCheck2 QCheck_alcotest Value
