test/test_wal.ml: Alcotest Buffer_pool Filename Heap_file Helpers Instance List Minirel_index Minirel_query Minirel_storage Minirel_txn Pmv Predicate Sys Template Value
