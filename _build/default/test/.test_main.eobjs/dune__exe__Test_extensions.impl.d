test/test_extensions.ml: Alcotest Array Hashtbl Helpers Instance List Minirel_query Minirel_storage Option Pmv Template Tuple Value
