test/test_exec.ml: Alcotest Array Discretize Heap_file Helpers Instance Interval List Minirel_exec Minirel_index Minirel_query Minirel_storage Minirel_workload Predicate Template Tuple Value
