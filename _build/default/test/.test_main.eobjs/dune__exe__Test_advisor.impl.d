test/test_advisor.ml: Alcotest Discretize Helpers Instance Interval List Minirel_index Minirel_query Minirel_storage Pmv Template Value
