test/test_trace.ml: Alcotest Filename Helpers List Minirel_shell Pmv Sys
