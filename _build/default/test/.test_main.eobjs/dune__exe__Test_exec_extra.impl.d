test/test_exec_extra.ml: Alcotest Array Fmt Helpers Instance Int List Minirel_exec Minirel_index Minirel_query Minirel_storage Minirel_workload Predicate QCheck2 QCheck_alcotest Schema Template Value
