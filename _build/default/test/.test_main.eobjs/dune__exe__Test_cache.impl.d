test/test_cache.ml: Alcotest Fmt Hashtbl List Minirel_cache QCheck2 QCheck_alcotest
