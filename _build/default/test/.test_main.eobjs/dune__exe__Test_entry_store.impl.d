test/test_entry_store.ml: Alcotest Array Bcp List Minirel_cache Minirel_query Minirel_storage Pmv QCheck2 QCheck_alcotest Tuple Value
