test/test_value.ml: Alcotest Minirel_storage QCheck2 QCheck_alcotest Value
