test/test_sizing_sim.ml: Alcotest Minirel_cache Pmv Pmv_sim
