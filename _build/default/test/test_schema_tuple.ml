open Minirel_storage

let check = Alcotest.check

let sch =
  Schema.create "t" [ ("a", Schema.Tint); ("b", Schema.Tstr); ("c", Schema.Tfloat) ]

let test_schema_create () =
  check Alcotest.int "arity" 3 (Schema.arity sch);
  check Alcotest.string "attr name" "b" (Schema.attr_name sch 1);
  check Alcotest.int "pos" 2 (Schema.pos sch "c");
  check Alcotest.bool "mem" true (Schema.mem sch "a");
  check Alcotest.bool "not mem" false (Schema.mem sch "z");
  Alcotest.check_raises "duplicate attr"
    (Invalid_argument "Schema.create: duplicate attribute a") (fun () ->
      ignore (Schema.create "bad" [ ("a", Schema.Tint); ("a", Schema.Tstr) ]));
  Alcotest.check_raises "empty name" (Invalid_argument "Schema.create: empty relation name")
    (fun () -> ignore (Schema.create "" []))

let test_conforms () =
  check Alcotest.bool "good tuple" true
    (Schema.conforms sch [| Value.Int 1; Value.Str "x"; Value.Float 0.5 |]);
  check Alcotest.bool "null anywhere" true
    (Schema.conforms sch [| Value.Null; Value.Null; Value.Null |]);
  check Alcotest.bool "wrong type" false
    (Schema.conforms sch [| Value.Str "no"; Value.Str "x"; Value.Float 0.5 |]);
  check Alcotest.bool "wrong arity" false (Schema.conforms sch [| Value.Int 1 |])

let test_tuple_ops () =
  let t = Tuple.of_list [ Value.Int 1; Value.Str "x"; Value.Int 3 ] in
  check Alcotest.int "arity" 3 (Tuple.arity t);
  check Helpers.value "get" (Value.Str "x") (Tuple.get t 1);
  check Helpers.tuple "project"
    [| Value.Int 3; Value.Int 1 |]
    (Tuple.project t [| 2; 0 |]);
  check Helpers.tuple "concat"
    [| Value.Int 1; Value.Str "x"; Value.Int 3; Value.Int 9 |]
    (Tuple.concat t [| Value.Int 9 |]);
  check Alcotest.int "size" (8 + 4 + 1 + 8) (Tuple.size_bytes t)

let test_tuple_compare () =
  let a = [| Value.Int 1; Value.Int 2 |] and b = [| Value.Int 1; Value.Int 3 |] in
  check Alcotest.bool "lt" true (Tuple.compare a b < 0);
  check Alcotest.bool "eq" true (Tuple.compare a a = 0);
  (* prefix ordering *)
  check Alcotest.bool "prefix lt" true (Tuple.compare [| Value.Int 1 |] a < 0);
  check Alcotest.bool "equal implies same hash" true (Tuple.hash a = Tuple.hash (Array.copy a))

let test_tuple_table () =
  let tbl = Tuple.Table.create 4 in
  let k1 = [| Value.Int 1; Value.Str "a" |] in
  Tuple.Table.replace tbl k1 "one";
  (* structurally equal key resolves *)
  check (Alcotest.option Alcotest.string) "find" (Some "one")
    (Tuple.Table.find_opt tbl [| Value.Int 1; Value.Str "a" |])

let prop_project_concat =
  QCheck2.Test.make ~name:"project after concat recovers the parts" ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 5) small_signed_int)
        (list_size (int_range 1 5) small_signed_int))
    (fun (xs, ys) ->
      let a = Array.of_list (List.map (fun i -> Value.Int i) xs) in
      let b = Array.of_list (List.map (fun i -> Value.Int i) ys) in
      let c = Tuple.concat a b in
      let left = Tuple.project c (Array.init (Array.length a) Fun.id) in
      let right =
        Tuple.project c (Array.init (Array.length b) (fun i -> i + Array.length a))
      in
      Tuple.equal left a && Tuple.equal right b)

let suite =
  [
    Alcotest.test_case "schema create/pos" `Quick test_schema_create;
    Alcotest.test_case "schema conforms" `Quick test_conforms;
    Alcotest.test_case "tuple ops" `Quick test_tuple_ops;
    Alcotest.test_case "tuple compare/hash" `Quick test_tuple_compare;
    Alcotest.test_case "tuple hash table" `Quick test_tuple_table;
    QCheck_alcotest.to_alcotest prop_project_concat;
  ]
