open Minirel_storage
open Minirel_query

let check = Alcotest.check
let vi i = Value.Int i
let t = [| vi 5; Value.Str "abc"; Value.Float 2.5 |]

let test_cmp () =
  let open Predicate in
  check Alcotest.bool "eq" true (eval (Cmp (Eq, 0, vi 5)) t);
  check Alcotest.bool "ne" true (eval (Cmp (Ne, 0, vi 6)) t);
  check Alcotest.bool "lt" true (eval (Cmp (Lt, 0, vi 6)) t);
  check Alcotest.bool "le at bound" true (eval (Cmp (Le, 0, vi 5)) t);
  check Alcotest.bool "gt" false (eval (Cmp (Gt, 0, vi 5)) t);
  check Alcotest.bool "ge at bound" true (eval (Cmp (Ge, 0, vi 5)) t);
  check Alcotest.bool "string eq" true (eval (Cmp (Eq, 1, Value.Str "abc")) t)

let test_in_set_interval () =
  let open Predicate in
  check Alcotest.bool "in set" true (eval (In_set (0, [ vi 1; vi 5 ])) t);
  check Alcotest.bool "not in set" false (eval (In_set (0, [ vi 1; vi 2 ])) t);
  check Alcotest.bool "in interval" true
    (eval (In_interval (0, Interval.closed ~lo:(vi 0) ~hi:(vi 5))) t);
  check Alcotest.bool "not in interval" false
    (eval (In_interval (0, Interval.open_ ~lo:(vi 5) ~hi:(vi 9))) t)

let test_boolean_combinators () =
  let open Predicate in
  let p = And [ Cmp (Eq, 0, vi 5); Or [ Cmp (Eq, 1, Value.Str "zzz"); True ] ] in
  check Alcotest.bool "and/or/true" true (eval p t);
  check Alcotest.bool "not" false (eval (Not p) t);
  check Alcotest.bool "empty and" true (eval (And []) t);
  check Alcotest.bool "empty or" false (eval (Or []) t)

let test_shift () =
  let open Predicate in
  let p = Cmp (Eq, 0, vi 5) in
  let joined = Tuple.concat [| Value.Str "pad" |] t in
  check Alcotest.bool "shifted position" true (eval (shift 1 p) joined);
  check Alcotest.bool "shift composes" true
    (eval (shift 1 (And [ p; In_set (1, [ Value.Str "abc" ]) ])) joined)

let test_positions () =
  let open Predicate in
  let p = And [ Cmp (Eq, 0, vi 1); Or [ In_set (3, []); Not (In_interval (7, Interval.full)) ] ] in
  check (Alcotest.list Alcotest.int) "positions" [ 0; 3; 7 ]
    (List.sort_uniq Int.compare (positions p));
  check (Alcotest.list Alcotest.int) "true has none" [] (positions True)

let test_conj () =
  let open Predicate in
  check Alcotest.bool "conj [] is true" true (conj [] = True);
  let p = Cmp (Eq, 0, vi 5) in
  check Alcotest.bool "conj singleton unwraps" true (conj [ p ] = p)

let suite =
  [
    Alcotest.test_case "comparisons" `Quick test_cmp;
    Alcotest.test_case "in set / interval" `Quick test_in_set_interval;
    Alcotest.test_case "boolean combinators" `Quick test_boolean_combinators;
    Alcotest.test_case "shift" `Quick test_shift;
    Alcotest.test_case "positions" `Quick test_positions;
    Alcotest.test_case "conj" `Quick test_conj;
  ]
