(* Operation O1: decomposition of Cselect into condition parts. *)

open Minirel_storage
open Minirel_query

let check = Alcotest.check
let vi i = Value.Int i

let setup () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  catalog

let test_equality_decompose () =
  let catalog = setup () in
  let c = Template.compile catalog Helpers.eqt_spec in
  let inst =
    Instance.make c [| Instance.Dvalues [ vi 1; vi 3 ]; Instance.Dvalues [ vi 2; vi 4; vi 6 ] |]
  in
  let cps = Condition_part.decompose inst in
  (* h = u1 * u2 = 2 * 3 = 6, the paper's combination factor *)
  check Alcotest.int "h = product" 6 (List.length cps);
  check Alcotest.int "combination_factor agrees" 6 (Condition_part.combination_factor inst);
  List.iter
    (fun cp -> check Alcotest.bool "equality cps are exact" true (Condition_part.is_exact cp))
    cps;
  (* bcps are the cross product of the value lists *)
  let bcps = List.map Condition_part.bcp cps in
  check Alcotest.bool "contains (1,2)" true
    (List.exists (Bcp.equal [| vi 1; vi 2 |]) bcps);
  check Alcotest.bool "contains (3,6)" true
    (List.exists (Bcp.equal [| vi 3; vi 6 |]) bcps);
  (* all distinct *)
  check Alcotest.int "no duplicate bcps" 6
    (List.length (List.sort_uniq Bcp.compare bcps))

let test_interval_decompose () =
  let catalog = setup () in
  let grid = Discretize.of_cuts [ vi 10; vi 20; vi 30 ] in
  let c = Template.compile catalog (Helpers.eqt_interval_spec ~grid) in
  (* s.e in [15, 25): pieces [15,20) (partial) and [20,25) (partial) *)
  let inst =
    Instance.make c
      [|
        Instance.Dvalues [ vi 1 ];
        Instance.Dintervals [ Interval.half_open ~lo:(vi 15) ~hi:(vi 25) ];
      |]
  in
  let cps = Condition_part.decompose inst in
  check Alcotest.int "two pieces" 2 (List.length cps);
  List.iter
    (fun cp ->
      check Alcotest.bool "clipped pieces are not exact" false (Condition_part.is_exact cp))
    cps;
  (* interval coordinate is the basic-interval id *)
  let ids =
    List.map (fun cp -> Value.int_exn (Condition_part.bcp cp).(1)) cps
    |> List.sort Int.compare
  in
  check (Alcotest.list Alcotest.int) "basic ids" [ 1; 2 ] ids;
  (* an aligned query produces exact parts *)
  let aligned =
    Instance.make c
      [|
        Instance.Dvalues [ vi 1 ];
        Instance.Dintervals [ Interval.half_open ~lo:(vi 10) ~hi:(vi 20) ];
      |]
  in
  match Condition_part.decompose aligned with
  | [ cp ] -> check Alcotest.bool "aligned is exact" true (Condition_part.is_exact cp)
  | other -> Alcotest.failf "expected 1 cp, got %d" (List.length other)

let test_check_membership () =
  let catalog = setup () in
  let grid = Discretize.of_cuts [ vi 10; vi 20; vi 30 ] in
  let c = Template.compile catalog (Helpers.eqt_interval_spec ~grid) in
  let inst =
    Instance.make c
      [|
        Instance.Dvalues [ vi 1 ];
        Instance.Dintervals [ Interval.half_open ~lo:(vi 15) ~hi:(vi 18) ];
      |]
  in
  match Condition_part.decompose inst with
  | [ cp ] ->
      (* result layout: rkey, e, f (e is in Ls already: rkey, e, f) *)
      let mk e = [| vi 99; vi e; vi 1 |] in
      check Alcotest.bool "inside piece" true (Condition_part.check c cp (mk 16));
      check Alcotest.bool "in bcp but outside piece" false (Condition_part.check c cp (mk 12));
      check Alcotest.bool "outside bcp" false (Condition_part.check c cp (mk 25))
  | other -> Alcotest.failf "expected 1 cp, got %d" (List.length other)

let test_bcp_of_result () =
  let catalog = setup () in
  let grid = Discretize.of_cuts [ vi 10; vi 20; vi 30 ] in
  let c = Template.compile catalog (Helpers.eqt_interval_spec ~grid) in
  (* result layout: rkey, e, f *)
  let bcp = Condition_part.bcp_of_result c [| vi 99; vi 25; vi 7 |] in
  check Helpers.tuple "eq coord is value, range coord is id" [| vi 7; vi 2 |] bcp

let test_cp_bcp_containment () =
  (* every result tuple accepted by the query belongs to exactly one cp,
     and that cp's bcp equals bcp_of_result *)
  let catalog = setup () in
  let c = Template.compile catalog Helpers.eqt_spec in
  let inst =
    Instance.make c [| Instance.Dvalues [ vi 1; vi 3 ]; Instance.Dvalues [ vi 2; vi 4 ] |]
  in
  let cps = Condition_part.decompose inst in
  let mk f g = [| vi 0; vi 0; vi f; vi g |] in
  List.iter
    (fun (f, g) ->
      let t = mk f g in
      if Instance.accepts_result inst t then begin
        let holders = List.filter (fun cp -> Condition_part.check c cp t) cps in
        check Alcotest.int "exactly one cp" 1 (List.length holders);
        check Helpers.tuple "containing bcp"
          (Condition_part.bcp (List.hd holders))
          (Condition_part.bcp_of_result c t)
      end)
    [ (1, 2); (1, 4); (3, 2); (3, 4); (1, 5); (9, 2) ]

let prop_decompose_partition =
  (* against the interval template: accepted tuples fall in exactly one
     cp; rejected tuples fall in none *)
  QCheck2.Test.make ~name:"O1 parts partition accepted results" ~count:150
    QCheck2.Gen.(
      triple
        (list_size (int_range 0 6) (int_range 0 40))
        (pair (int_range 0 45) (int_range 0 45))
        (pair (int_range 0 50) (int_range 0 9)))
    (fun (cuts, (a, b), (e_val, f_val)) ->
      let catalog = Helpers.fresh_catalog () in
      Helpers.build_rs ~n_r:5 ~n_s:5 catalog;
      let grid = Discretize.of_cuts (List.map (fun i -> vi i) cuts) in
      let c = Template.compile catalog (Helpers.eqt_interval_spec ~grid) in
      let lo, hi = (min a b, max a b + 1) in
      let inst =
        Instance.make c
          [|
            Instance.Dvalues [ vi f_val ];
            Instance.Dintervals [ Interval.half_open ~lo:(vi lo) ~hi:(vi hi) ];
          |]
      in
      let cps = Condition_part.decompose inst in
      let t = [| vi 0; vi e_val; vi f_val |] in
      let holders = List.length (List.filter (fun cp -> Condition_part.check c cp t) cps) in
      if Instance.accepts_result inst t then holders = 1 else holders = 0)

let suite =
  [
    Alcotest.test_case "equality decompose" `Quick test_equality_decompose;
    Alcotest.test_case "interval decompose" `Quick test_interval_decompose;
    Alcotest.test_case "cp membership check" `Quick test_check_membership;
    Alcotest.test_case "bcp_of_result" `Quick test_bcp_of_result;
    Alcotest.test_case "cp/bcp containment" `Quick test_cp_bcp_containment;
    QCheck_alcotest.to_alcotest prop_decompose_partition;
  ]
