open Minirel_storage
open Minirel_query

let check = Alcotest.check
let vi i = Value.Int i

let compiled_eqt () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  (catalog, Template.compile catalog Helpers.eqt_spec)

let test_compile_layout () =
  let _, c = compiled_eqt () in
  check Alcotest.int "joined arity" 7 c.Template.joined_arity;
  check (Alcotest.list Alcotest.int) "offsets" [ 0; 4 ] (Array.to_list c.Template.offsets);
  check Alcotest.int "r.c position" 1
    (Template.joined_pos c (Template.attr_ref ~rel:0 ~attr:"c"));
  check Alcotest.int "s.g position" 5
    (Template.joined_pos c (Template.attr_ref ~rel:1 ~attr:"g"))

let test_expanded_select () =
  let _, c = compiled_eqt () in
  (* Ls = (rkey, e); Cselect adds f and g -> Ls' has 4 attrs *)
  check Alcotest.int "Ls' size" 4 (List.length c.Template.expanded_select);
  (* sel_pos points at f then g inside the Ls' tuple *)
  check Alcotest.int "m = 2" 2 (Array.length c.Template.sel_pos);
  let result = [| vi 1; vi 2; vi 3; vi 4 |] in
  (* visible projection returns the original Ls prefix *)
  check Helpers.tuple "visible" [| vi 1; vi 2 |] (Template.visible_of_result c result)

let test_select_attr_in_ls () =
  (* when a Cselect attr already appears in Ls, Ls' must not duplicate it *)
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  let spec =
    {
      Helpers.eqt_spec with
      Template.select_list =
        [
          Template.attr_ref ~rel:0 ~attr:"f";
          Template.attr_ref ~rel:0 ~attr:"rkey";
        ];
    }
  in
  let c = Template.compile catalog spec in
  check Alcotest.int "Ls' dedups f" 3 (List.length c.Template.expanded_select);
  check Alcotest.int "sel_pos of f is its Ls slot" 0 c.Template.sel_pos.(0)

let test_result_of_joined () =
  let _, c = compiled_eqt () in
  let r_t = [| vi 7; vi 3; vi 2; Value.Str "p" |] in
  let s_t = [| vi 3; vi 4; vi 99 |] in
  let joined = Tuple.concat r_t s_t in
  let result = Template.result_of_joined c joined in
  check Alcotest.int "Ls' tuple arity" 4 (Tuple.arity result);
  (* rkey, e, then f and g *)
  check Helpers.tuple "projection" [| vi 7; vi 99; vi 2; vi 4 |] result

let test_validation_errors () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  let expect_invalid spec =
    match Template.compile catalog spec with
    | _ -> Alcotest.fail "invalid template accepted"
    | exception Invalid_argument _ -> ()
  in
  expect_invalid { Helpers.eqt_spec with Template.select_list = [] };
  expect_invalid { Helpers.eqt_spec with Template.selections = [||] };
  expect_invalid
    {
      Helpers.eqt_spec with
      Template.select_list = [ Template.attr_ref ~rel:5 ~attr:"x" ];
    };
  expect_invalid
    {
      Helpers.eqt_spec with
      Template.select_list = [ Template.attr_ref ~rel:0 ~attr:"nope" ];
    }

let test_fixed_pred_joined () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  let spec =
    { Helpers.eqt_spec with Template.fixed = [ (1, Predicate.Cmp (Predicate.Gt, 2, vi 50)) ] }
  in
  let c = Template.compile catalog spec in
  let p = Template.fixed_pred_joined c 1 in
  (* s.e sits at joined position 4 + 2 = 6 *)
  let joined = Array.make 7 (vi 0) in
  joined.(6) <- vi 60;
  check Alcotest.bool "shifted fixed pred" true (Predicate.eval p joined);
  joined.(6) <- vi 10;
  check Alcotest.bool "fails below" false (Predicate.eval p joined);
  check Alcotest.bool "other relation empty" true
    (Template.fixed_pred_joined c 0 = Predicate.True)

let test_avg_result_bytes () =
  check Alcotest.int "empty" 0 (Template.avg_result_bytes []);
  let sample = [ [| vi 1 |]; [| vi 2 |]; [| vi 3 |] ] in
  check Alcotest.int "ints are 8 bytes" 8 (Template.avg_result_bytes sample)

let test_instance_validation () =
  let _, c = compiled_eqt () in
  let ok = Instance.make c [| Instance.Dvalues [ vi 1 ]; Instance.Dvalues [ vi 2 ] |] in
  check Alcotest.bool "valid instance" true (Instance.params ok |> Array.length = 2);
  let expect_invalid params =
    match Instance.make c params with
    | _ -> Alcotest.fail "invalid instance accepted"
    | exception Invalid_argument _ -> ()
  in
  expect_invalid [| Instance.Dvalues [ vi 1 ] |];
  expect_invalid [| Instance.Dvalues []; Instance.Dvalues [ vi 2 ] |];
  expect_invalid [| Instance.Dvalues [ vi 1; vi 1 ]; Instance.Dvalues [ vi 2 ] |];
  expect_invalid [| Instance.Dintervals [ Interval.full ]; Instance.Dvalues [ vi 2 ] |];
  (* overlapping intervals rejected on interval-form templates *)
  let grid = Discretize.of_cuts [ vi 10 ] in
  let civ = Template.compile (fst (compiled_eqt ())) (Helpers.eqt_interval_spec ~grid) in
  ignore civ;
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  let civ = Template.compile catalog (Helpers.eqt_interval_spec ~grid) in
  (match
     Instance.make civ
       [|
         Instance.Dvalues [ vi 1 ];
         Instance.Dintervals
           [
             Interval.half_open ~lo:(vi 0) ~hi:(vi 10);
             Interval.half_open ~lo:(vi 5) ~hi:(vi 15);
           ];
       |]
   with
  | _ -> Alcotest.fail "overlapping intervals accepted"
  | exception Invalid_argument _ -> ())

let test_cselect_pred () =
  let _, c = compiled_eqt () in
  let inst = Instance.make c [| Instance.Dvalues [ vi 2; vi 3 ]; Instance.Dvalues [ vi 4 ] |] in
  (* result tuple layout: rkey, e, f, g *)
  check Alcotest.bool "accepts matching" true
    (Instance.accepts_result inst [| vi 1; vi 1; vi 2; vi 4 |]);
  check Alcotest.bool "accepts second disjunct" true
    (Instance.accepts_result inst [| vi 1; vi 1; vi 3; vi 4 |]);
  check Alcotest.bool "rejects wrong g" false
    (Instance.accepts_result inst [| vi 1; vi 1; vi 2; vi 5 |])

let suite =
  [
    Alcotest.test_case "compile layout" `Quick test_compile_layout;
    Alcotest.test_case "expanded select list" `Quick test_expanded_select;
    Alcotest.test_case "Cselect attr already in Ls" `Quick test_select_attr_in_ls;
    Alcotest.test_case "result_of_joined" `Quick test_result_of_joined;
    Alcotest.test_case "validation errors" `Quick test_validation_errors;
    Alcotest.test_case "fixed pred joined" `Quick test_fixed_pred_joined;
    Alcotest.test_case "avg result bytes" `Quick test_avg_result_bytes;
    Alcotest.test_case "instance validation" `Quick test_instance_validation;
    Alcotest.test_case "cselect predicate" `Quick test_cselect_pred;
  ]
