open Minirel_storage

let check = Alcotest.check

let test_read_miss_then_hit () =
  let pool = Buffer_pool.create ~capacity:4 () in
  let f = Buffer_pool.register_file pool in
  let stats = Buffer_pool.stats pool in
  Buffer_pool.access pool ~file:f ~page:0 ~mode:`Read;
  check Alcotest.int "first access misses" 1 stats.Io_stats.reads;
  Buffer_pool.access pool ~file:f ~page:0 ~mode:`Read;
  check Alcotest.int "second access hits" 1 stats.Io_stats.reads;
  check Alcotest.int "resident" 1 (Buffer_pool.resident pool)

let test_write_miss_no_read () =
  let pool = Buffer_pool.create ~capacity:4 () in
  let f = Buffer_pool.register_file pool in
  let stats = Buffer_pool.stats pool in
  Buffer_pool.access pool ~file:f ~page:0 ~mode:`Write;
  check Alcotest.int "append does not read" 0 stats.Io_stats.reads;
  Buffer_pool.flush pool;
  check Alcotest.int "dirty page flushed" 1 stats.Io_stats.writes

let test_dirty_eviction_writes () =
  let pool = Buffer_pool.create ~capacity:2 () in
  let f = Buffer_pool.register_file pool in
  let stats = Buffer_pool.stats pool in
  Buffer_pool.access pool ~file:f ~page:0 ~mode:`Write;
  Buffer_pool.access pool ~file:f ~page:1 ~mode:`Read;
  (* pool full; bringing in page 2 evicts a page; if it is the dirty one,
     a write is charged. Touch two more to make sure page 0 leaves. *)
  Buffer_pool.access pool ~file:f ~page:2 ~mode:`Read;
  Buffer_pool.access pool ~file:f ~page:3 ~mode:`Read;
  check Alcotest.bool "dirty eviction wrote" true (stats.Io_stats.writes >= 1);
  Buffer_pool.flush pool;
  (* flushing twice writes nothing new *)
  let w = stats.Io_stats.writes in
  Buffer_pool.flush pool;
  check Alcotest.int "flush idempotent" w stats.Io_stats.writes

let test_distinct_files () =
  let pool = Buffer_pool.create ~capacity:8 () in
  let f1 = Buffer_pool.register_file pool in
  let f2 = Buffer_pool.register_file pool in
  check Alcotest.bool "fresh ids" true (f1 <> f2);
  let stats = Buffer_pool.stats pool in
  Buffer_pool.access pool ~file:f1 ~page:0 ~mode:`Read;
  Buffer_pool.access pool ~file:f2 ~page:0 ~mode:`Read;
  check Alcotest.int "same page of different files are distinct" 2 stats.Io_stats.reads

let test_invalidate_file () =
  let pool = Buffer_pool.create ~capacity:8 () in
  let f1 = Buffer_pool.register_file pool in
  let f2 = Buffer_pool.register_file pool in
  Buffer_pool.access pool ~file:f1 ~page:0 ~mode:`Read;
  Buffer_pool.access pool ~file:f2 ~page:0 ~mode:`Read;
  Buffer_pool.invalidate_file pool ~file:f1;
  check Alcotest.int "only f2 resident" 1 (Buffer_pool.resident pool);
  let stats = Buffer_pool.stats pool in
  let r = stats.Io_stats.reads in
  Buffer_pool.access pool ~file:f2 ~page:0 ~mode:`Read;
  check Alcotest.int "f2 still cached" r stats.Io_stats.reads

let test_io_stats_diff () =
  let s = Io_stats.create () in
  Io_stats.add_read s;
  Io_stats.add_read s;
  let snap = Io_stats.snapshot s in
  Io_stats.add_read s;
  Io_stats.add_write s;
  let d = Io_stats.diff ~before:snap s in
  check Alcotest.int "diff reads" 1 d.Io_stats.reads;
  check Alcotest.int "diff writes" 1 d.Io_stats.writes;
  check Alcotest.int "total" 4 (Io_stats.total s)

let suite =
  [
    Alcotest.test_case "read miss then hit" `Quick test_read_miss_then_hit;
    Alcotest.test_case "write miss appends" `Quick test_write_miss_no_read;
    Alcotest.test_case "dirty eviction" `Quick test_dirty_eviction_writes;
    Alcotest.test_case "distinct files" `Quick test_distinct_files;
    Alcotest.test_case "invalidate file" `Quick test_invalidate_file;
    Alcotest.test_case "io stats diff" `Quick test_io_stats_diff;
  ]
