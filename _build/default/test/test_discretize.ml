open Minirel_storage
open Minirel_query

let check = Alcotest.check
let vi i = Value.Int i

let grid = Discretize.of_cuts [ vi 10; vi 20; vi 30 ]

let test_of_cuts_sorted_dedup () =
  let g = Discretize.of_cuts [ vi 30; vi 10; vi 20; vi 10 ] in
  check Alcotest.int "distinct cuts" 4 (Discretize.n_intervals g);
  (* same grid as sorted input *)
  check Alcotest.int "id of 15" (Discretize.id_of_value grid (vi 15))
    (Discretize.id_of_value g (vi 15))

let test_interval_of_id () =
  check Alcotest.bool "id 0 unbounded below" true
    (Interval.contains (Discretize.interval_of_id grid 0) (vi (-1000)));
  check Alcotest.bool "id 0 excludes cut" false
    (Interval.contains (Discretize.interval_of_id grid 0) (vi 10));
  check Alcotest.bool "id 1 includes lower cut" true
    (Interval.contains (Discretize.interval_of_id grid 1) (vi 10));
  check Alcotest.bool "last unbounded above" true
    (Interval.contains (Discretize.interval_of_id grid 3) (vi 1_000_000));
  Alcotest.check_raises "out of range" (Invalid_argument "Discretize.interval_of_id")
    (fun () -> ignore (Discretize.interval_of_id grid 4))

let test_id_of_value () =
  check Alcotest.int "below all cuts" 0 (Discretize.id_of_value grid (vi 5));
  check Alcotest.int "at first cut" 1 (Discretize.id_of_value grid (vi 10));
  check Alcotest.int "mid" 2 (Discretize.id_of_value grid (vi 25));
  check Alcotest.int "beyond" 3 (Discretize.id_of_value grid (vi 99))

let test_decompose () =
  (* query interval [15, 25) overlaps basic 1 (partially) and 2 (partially) *)
  let pieces = Discretize.decompose grid (Interval.half_open ~lo:(vi 15) ~hi:(vi 25)) in
  check (Alcotest.list Alcotest.int) "ids" [ 1; 2 ] (List.map fst pieces);
  (* the piece inside basic 1 is [15, 20) — not the full basic interval *)
  let _, piece1 = List.hd pieces in
  check Alcotest.bool "piece clipped" true
    (Interval.equal piece1 (Interval.half_open ~lo:(vi 15) ~hi:(vi 20)));
  (* an exactly-aligned query yields the basic interval itself *)
  let aligned = Discretize.decompose grid (Interval.half_open ~lo:(vi 10) ~hi:(vi 20)) in
  (match aligned with
  | [ (1, piece) ] ->
      check Alcotest.bool "aligned is exact" true
        (Interval.equal piece (Discretize.interval_of_id grid 1))
  | _ -> Alcotest.fail "expected exactly basic 1");
  (* unbounded query covers everything *)
  check Alcotest.int "full covers all" 4 (List.length (Discretize.decompose grid Interval.full))

let test_equal_width () =
  let g = Discretize.equal_width ~lo:0 ~hi:100 ~bins:10 in
  check Alcotest.bool "at least 10 intervals" true (Discretize.n_intervals g >= 10);
  (* ids partition: consecutive values map to non-decreasing ids *)
  let ids = List.init 100 (fun v -> Discretize.id_of_value g (vi v)) in
  check Alcotest.bool "monotone" true
    (List.for_all2 (fun a b -> a <= b) ids (List.tl ids @ [ List.nth ids 99 ]))

let test_equi_depth () =
  (* heavily skewed sample: cuts concentrate where the data is *)
  let samples = List.init 1000 (fun i -> vi (if i < 900 then i mod 10 else i)) in
  let g = Discretize.equi_depth ~bins:5 samples in
  check Alcotest.bool "some cuts" true (Discretize.n_intervals g > 1);
  check Alcotest.bool "hot region split" true (Discretize.id_of_value g (vi 9) >= 1);
  check Alcotest.int "empty sample" 1 (Discretize.n_intervals (Discretize.equi_depth ~bins:5 []))

let test_from_to_lists () =
  let g =
    Discretize.of_from_to_lists ~from_values:[ vi 0; vi 10 ] ~to_values:[ vi 5; vi 15 ]
  in
  check Alcotest.int "four cuts" 5 (Discretize.n_intervals g)

let prop_partition =
  (* The basic intervals partition the domain: every value belongs to
     exactly the interval whose id [id_of_value] reports. *)
  QCheck2.Test.make ~name:"basic intervals partition the domain" ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 8) (int_range (-40) 40))
        (int_range (-50) 50))
    (fun (cuts, x) ->
      let g = Discretize.of_cuts (List.map (fun i -> vi i) cuts) in
      let v = vi x in
      let id = Discretize.id_of_value g v in
      let n = Discretize.n_intervals g in
      Interval.contains (Discretize.interval_of_id g id) v
      && List.for_all
           (fun other ->
             other = id || not (Interval.contains (Discretize.interval_of_id g other) v))
           (List.init n Fun.id))

let prop_decompose_covers =
  (* decompose pieces are disjoint, each inside its basic interval, and
     together they cover exactly the query interval *)
  QCheck2.Test.make ~name:"decompose partitions the query interval" ~count:300
    QCheck2.Gen.(
      triple
        (list_size (int_range 0 8) (int_range (-40) 40))
        (pair (int_range (-45) 45) (int_range (-45) 45))
        (int_range (-50) 50))
    (fun (cuts, (a, b), x) ->
      let lo, hi = (min a b, max a b + 1) in
      let g = Discretize.of_cuts (List.map (fun i -> vi i) cuts) in
      let q = Interval.half_open ~lo:(vi lo) ~hi:(vi hi) in
      let pieces = Discretize.decompose g q in
      let v = vi x in
      let in_query = Interval.contains q v in
      let holders = List.filter (fun (_, piece) -> Interval.contains piece v) pieces in
      List.for_all
        (fun (id, piece) -> Interval.subset piece (Discretize.interval_of_id g id))
        pieces
      && (if in_query then List.length holders = 1 else holders = [])
      && List.for_all
           (fun (id, piece) -> Discretize.id_of_value g (vi x) = id || not (Interval.contains piece v))
           pieces)

let suite =
  [
    Alcotest.test_case "of_cuts sorts and dedups" `Quick test_of_cuts_sorted_dedup;
    Alcotest.test_case "interval_of_id" `Quick test_interval_of_id;
    Alcotest.test_case "id_of_value" `Quick test_id_of_value;
    Alcotest.test_case "decompose" `Quick test_decompose;
    Alcotest.test_case "equal width" `Quick test_equal_width;
    Alcotest.test_case "equi depth" `Quick test_equi_depth;
    Alcotest.test_case "from/to lists" `Quick test_from_to_lists;
    QCheck_alcotest.to_alcotest prop_partition;
    QCheck_alcotest.to_alcotest prop_decompose_covers;
  ]
