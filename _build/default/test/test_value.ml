open Minirel_storage

let check = Alcotest.check
let vi i = Value.Int i

let test_compare_same_type () =
  check Alcotest.bool "int order" true (Value.compare (vi 1) (vi 2) < 0);
  check Alcotest.bool "int equal" true (Value.compare (vi 5) (vi 5) = 0);
  check Alcotest.bool "float order" true
    (Value.compare (Value.Float 1.5) (Value.Float 2.5) < 0);
  check Alcotest.bool "string order" true
    (Value.compare (Value.Str "abc") (Value.Str "abd") < 0)

let test_compare_cross_type () =
  (* fixed rank order: Null < Int < Float < Str *)
  check Alcotest.bool "null < int" true (Value.compare Value.Null (vi 0) < 0);
  check Alcotest.bool "int < float" true (Value.compare (vi 9999) (Value.Float 0.0) < 0);
  check Alcotest.bool "float < str" true
    (Value.compare (Value.Float 1e9) (Value.Str "") < 0)

let test_equal_and_hash () =
  check Alcotest.bool "equal" true (Value.equal (Value.Str "x") (Value.Str "x"));
  check Alcotest.bool "not equal" false (Value.equal (vi 1) (vi 2));
  check Alcotest.int "hash consistent" (Value.hash (vi 42)) (Value.hash (vi 42))

let test_size_bytes () =
  check Alcotest.int "int" 8 (Value.size_bytes (vi 7));
  check Alcotest.int "null" 1 (Value.size_bytes Value.Null);
  check Alcotest.int "str" (4 + 3) (Value.size_bytes (Value.Str "abc"))

let test_accessors () =
  check Alcotest.int "int_exn" 3 (Value.int_exn (vi 3));
  check Alcotest.string "str_exn" "s" (Value.str_exn (Value.Str "s"));
  check (Alcotest.float 0.0) "float_exn" 2.5 (Value.float_exn (Value.Float 2.5));
  Alcotest.check_raises "int_exn on str" (Invalid_argument "Value.int_exn: \"a\"")
    (fun () -> ignore (Value.int_exn (Value.Str "a")));
  check Alcotest.bool "is_null" true (Value.is_null Value.Null);
  check Alcotest.bool "is_null int" false (Value.is_null (vi 0))

let test_to_string () =
  check Alcotest.string "int" "42" (Value.to_string (vi 42));
  check Alcotest.string "null" "NULL" (Value.to_string Value.Null)

let prop_compare_total_order =
  let gen =
    QCheck2.Gen.(
      oneof
        [
          return Value.Null;
          map (fun i -> Value.Int i) small_signed_int;
          map (fun f -> Value.Float f) (float_range (-1000.) 1000.);
          map (fun s -> Value.Str s) (string_size (int_range 0 6));
        ])
  in
  QCheck2.Test.make ~name:"Value.compare is a total order (antisym + trans sample)"
    ~count:500
    QCheck2.Gen.(triple gen gen gen)
    (fun (a, b, c) ->
      let ab = Value.compare a b and ba = Value.compare b a in
      let antisym = compare ab (-ba) = 0 in
      let trans =
        if Value.compare a b <= 0 && Value.compare b c <= 0 then Value.compare a c <= 0
        else true
      in
      antisym && trans)

let suite =
  [
    Alcotest.test_case "compare within type" `Quick test_compare_same_type;
    Alcotest.test_case "compare across types" `Quick test_compare_cross_type;
    Alcotest.test_case "equal and hash" `Quick test_equal_and_hash;
    Alcotest.test_case "size_bytes" `Quick test_size_bytes;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "to_string" `Quick test_to_string;
    QCheck_alcotest.to_alcotest prop_compare_total_order;
  ]
