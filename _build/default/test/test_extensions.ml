open Minirel_storage
open Minirel_query
module View = Pmv.View
module Answer = Pmv.Answer
module Ext = Pmv.Extensions
module Ranking = Pmv.Ranking

let check = Alcotest.check
let vi i = Value.Int i

let setup () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  let c = Template.compile catalog Helpers.eqt_spec in
  let view = View.create ~capacity:30 ~f_max:3 ~name:"ext" c in
  (catalog, c, view)

let test_distinct () =
  let catalog, c, view = setup () in
  let inst = Instance.make c [| Instance.Dvalues [ vi 1; vi 2 ]; Instance.Dvalues [ vi 1 ] |] in
  (* warm, then answer distinct *)
  ignore (Helpers.collect_answer ~view catalog inst);
  let seen = ref [] in
  let _, n_distinct =
    Ext.answer_distinct ~view catalog inst ~on_tuple:(fun _ t -> seen := t :: !seen)
  in
  let expect = List.sort_uniq Tuple.compare (Helpers.brute_force_answer catalog inst) in
  check Alcotest.int "distinct count" (List.length expect) n_distinct;
  check Alcotest.bool "set equality" true
    (Helpers.same_multiset !seen expect);
  check Alcotest.int "no duplicates delivered" (List.length expect)
    (List.length (List.sort_uniq Tuple.compare !seen))

let test_grouped_aggregates () =
  let catalog, c, view = setup () in
  let inst = Instance.make c [| Instance.Dvalues [ vi 1; vi 3 ]; Instance.Dvalues [ vi 2; vi 5 ] |] in
  (* warm the PMV so partial groups exist on the second run *)
  ignore (Helpers.collect_answer ~view catalog inst);
  (* group by g (position 3 in Ls' = rkey, e, f, g), count *)
  let r = Ext.answer_grouped ~view catalog inst ~group_by:[| 3 |] ~agg:Ext.Count in
  let brute = Helpers.brute_force_answer catalog inst in
  let expect_tbl = Hashtbl.create 8 in
  List.iter
    (fun t ->
      let k = Value.int_exn t.(3) in
      Hashtbl.replace expect_tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt expect_tbl k)))
    brute;
  check Alcotest.int "group count" (Hashtbl.length expect_tbl) (List.length r.Ext.exact_groups);
  List.iter
    (fun (key, v) ->
      let k = Value.int_exn key.(0) in
      check (Alcotest.float 1e-9) "exact group value"
        (float_of_int (Hashtbl.find expect_tbl k))
        v)
    r.Ext.exact_groups;
  (* partial groups only summarise cached tuples: each partial count is
     bounded by the exact one *)
  List.iter
    (fun (key, v) ->
      let exact = List.assoc key (List.map (fun (k, v) -> (k, v)) r.Ext.exact_groups) in
      check Alcotest.bool "partial <= exact" true (v <= exact +. 1e-9))
    r.Ext.partial_groups;
  check Alcotest.bool "some partial groups" true (r.Ext.partial_groups <> [])

let test_grouped_sum_avg () =
  let catalog, c, view = setup () in
  let inst = Instance.make c [| Instance.Dvalues [ vi 1 ]; Instance.Dvalues [ vi 1 ] |] in
  (* sum over e (position 1) grouped by f (position 2) *)
  let r = Ext.answer_grouped ~view catalog inst ~group_by:[| 2 |] ~agg:(Ext.Sum 1) in
  let brute = Helpers.brute_force_answer catalog inst in
  let total = List.fold_left (fun acc t -> acc + Value.int_exn t.(1)) 0 brute in
  (match r.Ext.exact_groups with
  | [ (_, v) ] -> check (Alcotest.float 1e-9) "sum" (float_of_int total) v
  | gs -> Alcotest.failf "expected one group, got %d" (List.length gs));
  let ravg = Ext.answer_grouped ~view catalog inst ~group_by:[| 2 |] ~agg:(Ext.Avg 1) in
  match ravg.Ext.exact_groups with
  | [ (_, v) ] ->
      check (Alcotest.float 1e-6) "avg"
        (float_of_int total /. float_of_int (List.length brute))
        v
  | _ -> Alcotest.fail "avg groups"

let test_exists () =
  let catalog, c, view = setup () in
  let inst = Instance.make c [| Instance.Dvalues [ vi 1 ]; Instance.Dvalues [ vi 1 ] |] in
  (* cold: must execute *)
  (match Ext.exists_ ~view catalog inst with
  | true, `Executed -> ()
  | true, `From_pmv -> Alcotest.fail "cold PMV cannot witness"
  | false, _ -> Alcotest.fail "query has results");
  (* warm the PMV, then the witness comes from the cache *)
  ignore (Helpers.collect_answer ~view catalog inst);
  (match Ext.exists_ ~view catalog inst with
  | true, `From_pmv -> ()
  | true, `Executed -> Alcotest.fail "expected cached witness"
  | false, _ -> Alcotest.fail "query has results");
  (* a query with no results is false either way *)
  let empty_inst =
    Instance.make c [| Instance.Dvalues [ vi 999 ]; Instance.Dvalues [ vi 998 ] |]
  in
  match Ext.exists_ ~view catalog empty_inst with
  | false, `Executed -> ()
  | _ -> Alcotest.fail "expected executed false"

let test_filter_exists () =
  let catalog, c, view = setup () in
  let hot = Instance.make c [| Instance.Dvalues [ vi 1 ]; Instance.Dvalues [ vi 1 ] |] in
  ignore (Helpers.collect_answer ~view catalog hot);
  let candidates = [ vi 1; vi 999 ] in
  let kept, pmv_hits =
    Ext.filter_exists ~view catalog ~candidates ~subquery_of:(fun v ->
        Instance.make c [| Instance.Dvalues [ v ]; Instance.Dvalues [ vi 1 ] |])
  in
  check Alcotest.int "one candidate kept" 1 (List.length kept);
  check Alcotest.bool "PMV answered at least one check" true (pmv_hits >= 1)

let test_ranking () =
  let catalog, c, view = setup () in
  let hot = Instance.make c [| Instance.Dvalues [ vi 1 ]; Instance.Dvalues [ vi 1 ] |] in
  let cold = Instance.make c [| Instance.Dvalues [ vi 2 ]; Instance.Dvalues [ vi 2 ] |] in
  for _ = 1 to 5 do
    ignore (Helpers.collect_answer ~view catalog hot)
  done;
  ignore (Helpers.collect_answer ~view catalog cold);
  let hot_t = List.hd (Helpers.brute_force_answer catalog hot) in
  let cold_t = List.hd (Helpers.brute_force_answer catalog cold) in
  check Alcotest.bool "hot more popular" true
    (Ranking.popularity view hot_t > Ranking.popularity view cold_t);
  (match Ranking.rank_results view [ cold_t; hot_t ] with
  | [ first; _ ] -> check Helpers.tuple "hot ranked first" hot_t first
  | _ -> Alcotest.fail "rank size");
  let top = Ranking.top_bcps view ~k:1 in
  check Alcotest.int "top-1" 1 (List.length top);
  check Helpers.tuple "hottest bcp" [| vi 1; vi 1 |] (fst (List.hd top));
  (* unknown tuples rank last with popularity 0 *)
  check Alcotest.int "unknown popularity" 0
    (Ranking.popularity view [| vi 0; vi 0; vi 42; vi 42 |])

let test_ordered () =
  let catalog, c, view = setup () in
  let inst = Instance.make c [| Instance.Dvalues [ vi 1; vi 2 ]; Instance.Dvalues [ vi 1 ] |] in
  ignore (Helpers.collect_answer ~view catalog inst);
  (* order by e (position 1) ascending *)
  let r = Ext.answer_ordered ~view catalog inst ~order_by:[| 1 |] () in
  let expect =
    List.sort
      (fun a b -> Value.compare a.(1) b.(1))
      (Helpers.brute_force_answer catalog inst)
  in
  check Alcotest.int "final size" (List.length expect) (List.length r.Ext.final_sorted);
  check Alcotest.bool "final sorted correctly" true
    (List.for_all2 (fun a b -> Value.equal a.(1) b.(1)) r.Ext.final_sorted expect);
  check Alcotest.bool "early preview nonempty" true (r.Ext.early_sorted <> []);
  (* the preview is itself sorted and a sub-multiset of the answer *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> Value.compare a.(1) b.(1) <= 0 && sorted rest
    | _ -> true
  in
  check Alcotest.bool "preview sorted" true (sorted r.Ext.early_sorted);
  let desc = Ext.answer_ordered ~view catalog inst ~order_by:[| 1 |] ~desc:true () in
  (* ties keep stable order in both directions, so compare the key
     sequence, not whole tuples *)
  let keys rows = List.map (fun t -> t.(1)) rows in
  check Alcotest.bool "desc reverses the key order" true
    (List.for_all2 Value.equal (keys desc.Ext.final_sorted)
       (List.rev (keys r.Ext.final_sorted)))

let test_first_k () =
  let catalog, c, view = setup () in
  let inst = Instance.make c [| Instance.Dvalues [ vi 1; vi 2 ]; Instance.Dvalues [ vi 1 ] |] in
  let all = Helpers.brute_force_answer catalog inst in
  let n = List.length all in
  check Alcotest.bool "enough rows for the test" true (n > 3);
  let got = Ext.answer_first_k ~view catalog inst ~k:3 in
  check Alcotest.int "exactly k" 3 (List.length got);
  List.iter
    (fun t -> check Alcotest.bool "result is genuine" true (Instance.accepts_result inst t))
    got;
  (* k beyond the result size returns everything *)
  let all_got = Ext.answer_first_k ~view catalog inst ~k:(n + 10) in
  check Alcotest.bool "k past the end = full answer" true (Helpers.same_multiset all_got all);
  (* early termination still counted the queries in view stats *)
  check Alcotest.bool "queries counted despite early stop" true
    ((View.stats view).View.queries >= 2);
  match Ext.answer_first_k ~view catalog inst ~k:0 with
  | _ -> Alcotest.fail "k=0 accepted"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "distinct" `Quick test_distinct;
    Alcotest.test_case "order by" `Quick test_ordered;
    Alcotest.test_case "first k / early termination" `Quick test_first_k;
    Alcotest.test_case "grouped count" `Quick test_grouped_aggregates;
    Alcotest.test_case "grouped sum/avg" `Quick test_grouped_sum_avg;
    Alcotest.test_case "exists acceleration" `Quick test_exists;
    Alcotest.test_case "filter_exists" `Quick test_filter_exists;
    Alcotest.test_case "popularity ranking" `Quick test_ranking;
  ]
