open Minirel_storage
module Catalog = Minirel_index.Catalog
module Snapshot = Minirel_index.Snapshot
module Index = Minirel_index.Index

let check = Alcotest.check
let vi i = Value.Int i

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let contents catalog rel =
  Heap_file.fold (Catalog.heap catalog rel) (fun acc _ t -> t :: acc) []

let test_roundtrip () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs ~n_r:50 ~n_s:30 catalog;
  let file = tmp "pmv_snapshot_test.db" in
  Snapshot.save catalog ~filename:file;
  let pool = Buffer_pool.create ~capacity:1_000 () in
  let loaded = Snapshot.load ~pool ~filename:file in
  (* relations, tuples and schemas survive *)
  check
    (Alcotest.list Alcotest.string)
    "relations"
    (List.sort String.compare (Catalog.relations catalog))
    (List.sort String.compare (Catalog.relations loaded));
  List.iter
    (fun rel ->
      check Alcotest.bool
        (rel ^ " contents equal")
        true
        (Helpers.same_multiset (contents catalog rel) (contents loaded rel)))
    [ "r"; "s" ];
  (* index definitions survive and are rebuilt *)
  check Alcotest.int "r indexes" 2 (List.length (Catalog.indexes loaded "r"));
  (match Catalog.index_on loaded ~rel:"r" ~attrs:[ "f" ] with
  | Some ix -> check Alcotest.int "backfilled" 50 (Index.n_entries ix)
  | None -> Alcotest.fail "index r_f lost");
  Sys.remove file

let test_value_escaping () =
  let catalog = Helpers.fresh_catalog () in
  let sch =
    Schema.create "weird"
      [ ("k", Schema.Tint); ("txt", Schema.Tstr); ("x", Schema.Tfloat) ]
  in
  let _ = Catalog.create_relation catalog sch in
  let nasty =
    [
      [| vi 1; Value.Str "tab\there"; Value.Float 0.1 |];
      [| vi 2; Value.Str "new\nline"; Value.Float (-1.5e-9) |];
      [| vi 3; Value.Str "quote'and\\slash"; Value.Float 1e300 |];
      [| vi 4; Value.Null; Value.Null |];
      [| vi 5; Value.Str ""; Value.Float 0.0 |];
    ]
  in
  List.iter (fun t -> ignore (Catalog.insert catalog ~rel:"weird" t)) nasty;
  let file = tmp "pmv_snapshot_escape.db" in
  Snapshot.save catalog ~filename:file;
  let pool = Buffer_pool.create ~capacity:100 () in
  let loaded = Snapshot.load ~pool ~filename:file in
  check Alcotest.bool "nasty values round-trip" true
    (Helpers.same_multiset nasty (contents loaded "weird"));
  Sys.remove file

let test_corrupt_detected () =
  let file = tmp "pmv_snapshot_corrupt.db" in
  let oc = open_out file in
  output_string oc "relation x\nattr a int\nbogus line here\n";
  close_out oc;
  let pool = Buffer_pool.create ~capacity:100 () in
  (match Snapshot.load ~pool ~filename:file with
  | _ -> Alcotest.fail "corrupt snapshot accepted"
  | exception Snapshot.Corrupt _ -> ());
  Sys.remove file

let test_queries_after_reload () =
  (* a loaded catalog supports the full PMV pipeline *)
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  let file = tmp "pmv_snapshot_pipeline.db" in
  Snapshot.save catalog ~filename:file;
  let pool = Buffer_pool.create ~capacity:2_000 () in
  let loaded = Snapshot.load ~pool ~filename:file in
  let compiled = Minirel_query.Template.compile loaded Helpers.eqt_spec in
  let view = Pmv.View.create ~capacity:20 ~f_max:2 ~name:"snap" compiled in
  let inst =
    Minirel_query.Instance.make compiled
      [| Minirel_query.Instance.Dvalues [ vi 1 ]; Minirel_query.Instance.Dvalues [ vi 1 ] |]
  in
  let out = ref [] in
  let _ = Pmv.Answer.answer ~view loaded inst ~on_tuple:(fun _ t -> out := t :: !out) in
  check Alcotest.bool "answers on loaded catalog" true
    (Helpers.same_multiset !out (Helpers.brute_force_answer loaded inst));
  Sys.remove file

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "value escaping" `Quick test_value_escaping;
    Alcotest.test_case "corrupt detected" `Quick test_corrupt_detected;
    Alcotest.test_case "pipeline after reload" `Quick test_queries_after_reload;
  ]
