open Minirel_storage
open Minirel_query

let check = Alcotest.check
let vi i = Value.Int i
let iv = Alcotest.testable Interval.pp Interval.equal

let test_contains () =
  let t = Interval.half_open ~lo:(vi 10) ~hi:(vi 20) in
  check Alcotest.bool "inside" true (Interval.contains t (vi 15));
  check Alcotest.bool "lower closed" true (Interval.contains t (vi 10));
  check Alcotest.bool "upper open" false (Interval.contains t (vi 20));
  check Alcotest.bool "below" false (Interval.contains t (vi 9));
  let o = Interval.open_ ~lo:(vi 10) ~hi:(vi 20) in
  check Alcotest.bool "open lower excluded" false (Interval.contains o (vi 10));
  let c = Interval.closed ~lo:(vi 10) ~hi:(vi 20) in
  check Alcotest.bool "closed upper included" true (Interval.contains c (vi 20));
  check Alcotest.bool "full contains all" true (Interval.contains Interval.full (vi (-999)));
  check Alcotest.bool "point" true (Interval.contains (Interval.point (vi 5)) (vi 5))

let test_unbounded () =
  check Alcotest.bool "at_least" true (Interval.contains (Interval.at_least (vi 3)) (vi 3));
  check Alcotest.bool "at_least below" false
    (Interval.contains (Interval.at_least (vi 3)) (vi 2));
  check Alcotest.bool "below" true (Interval.contains (Interval.below (vi 3)) (vi 2));
  check Alcotest.bool "below at bound" false (Interval.contains (Interval.below (vi 3)) (vi 3))

let test_is_empty () =
  check Alcotest.bool "reversed closed" true
    (Interval.is_empty (Interval.closed ~lo:(vi 5) ~hi:(vi 4)));
  check Alcotest.bool "degenerate closed ok" false
    (Interval.is_empty (Interval.closed ~lo:(vi 5) ~hi:(vi 5)));
  check Alcotest.bool "degenerate open empty" true
    (Interval.is_empty (Interval.open_ ~lo:(vi 5) ~hi:(vi 5)));
  check Alcotest.bool "half open same bound empty" true
    (Interval.is_empty (Interval.half_open ~lo:(vi 5) ~hi:(vi 5)))

let test_intersect () =
  let a = Interval.half_open ~lo:(vi 0) ~hi:(vi 10) in
  let b = Interval.half_open ~lo:(vi 5) ~hi:(vi 15) in
  (match Interval.intersect a b with
  | Some i -> check iv "overlap" (Interval.half_open ~lo:(vi 5) ~hi:(vi 10)) i
  | None -> Alcotest.fail "expected overlap");
  check Alcotest.bool "disjoint" true
    (Interval.intersect a (Interval.at_least (vi 10)) = None);
  check Alcotest.bool "touching closed" true
    (Interval.intersect (Interval.closed ~lo:(vi 0) ~hi:(vi 5))
       (Interval.closed ~lo:(vi 5) ~hi:(vi 9))
    <> None)

let test_subset () =
  let big = Interval.closed ~lo:(vi 0) ~hi:(vi 100) in
  check Alcotest.bool "strict subset" true
    (Interval.subset (Interval.open_ ~lo:(vi 10) ~hi:(vi 20)) big);
  check Alcotest.bool "self subset" true (Interval.subset big big);
  check Alcotest.bool "not subset" false (Interval.subset Interval.full big);
  (* open vs closed at same endpoints *)
  check Alcotest.bool "open in closed" true
    (Interval.subset (Interval.open_ ~lo:(vi 0) ~hi:(vi 100)) big);
  check Alcotest.bool "closed not in open" false
    (Interval.subset big (Interval.open_ ~lo:(vi 0) ~hi:(vi 100)))

let test_pairwise_disjoint () =
  let mk l h = Interval.half_open ~lo:(vi l) ~hi:(vi h) in
  check Alcotest.bool "disjoint" true (Interval.pairwise_disjoint [ mk 0 5; mk 5 10; mk 12 20 ]);
  check Alcotest.bool "overlap detected" false (Interval.pairwise_disjoint [ mk 0 6; mk 5 10 ])

let gen_interval =
  QCheck2.Gen.(
    let bnd = int_range (-50) 50 in
    map2
      (fun a b ->
        let lo, hi = (min a b, max a b) in
        Interval.half_open ~lo:(vi lo) ~hi:(vi hi))
      bnd bnd)

let prop_intersect_sound =
  QCheck2.Test.make ~name:"intersection contains exactly the common points" ~count:300
    QCheck2.Gen.(triple gen_interval gen_interval (int_range (-60) 60))
    (fun (a, b, x) ->
      let v = vi x in
      let in_both = Interval.contains a v && Interval.contains b v in
      match Interval.intersect a b with
      | None -> not in_both
      | Some i -> Interval.contains i v = in_both)

let prop_subset_implies_containment =
  QCheck2.Test.make ~name:"subset implies pointwise containment" ~count:300
    QCheck2.Gen.(triple gen_interval gen_interval (int_range (-60) 60))
    (fun (a, b, x) ->
      if Interval.subset a b && Interval.contains a (vi x) then Interval.contains b (vi x)
      else true)

let suite =
  [
    Alcotest.test_case "contains" `Quick test_contains;
    Alcotest.test_case "unbounded" `Quick test_unbounded;
    Alcotest.test_case "is_empty" `Quick test_is_empty;
    Alcotest.test_case "intersect" `Quick test_intersect;
    Alcotest.test_case "subset" `Quick test_subset;
    Alcotest.test_case "pairwise disjoint" `Quick test_pairwise_disjoint;
    QCheck_alcotest.to_alcotest prop_intersect_sound;
    QCheck_alcotest.to_alcotest prop_subset_implies_containment;
  ]
