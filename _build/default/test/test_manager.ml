open Minirel_storage
open Minirel_query
module Manager = Pmv.Manager
module View = Pmv.View
module Txn = Minirel_txn.Txn

let check = Alcotest.check
let vi i = Value.Int i

let setup () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  let c_eqt = Template.compile catalog Helpers.eqt_spec in
  let grid = Discretize.of_cuts (List.init 11 (fun i -> vi (i * 10))) in
  ignore (Minirel_index.Catalog.create_index catalog ~rel:"s" ~name:"s_e" ~attrs:[ "e" ] ());
  let c_iv = Template.compile catalog (Helpers.eqt_interval_spec ~grid) in
  (catalog, c_eqt, c_iv)

let test_create_and_route () =
  let catalog, c_eqt, c_iv = setup () in
  let m = Manager.create catalog in
  let _v1 = Manager.create_view ~capacity:20 m c_eqt in
  check Alcotest.int "one view" 1 (Manager.n_views m);
  check Alcotest.bool "find by template" true (Manager.find m ~template:"eqt" <> None);
  check Alcotest.bool "unknown template" true (Manager.find m ~template:"nope" = None);
  (* a query from the registered template routes through the view *)
  let inst = Instance.make c_eqt [| Instance.Dvalues [ vi 1 ]; Instance.Dvalues [ vi 1 ] |] in
  let _, used = Manager.answer m inst ~on_tuple:(fun _ _ -> ()) in
  check Alcotest.bool "routed" true used;
  (* one from an unregistered template still gets answered, plainly *)
  let inst2 =
    Instance.make c_iv
      [|
        Instance.Dvalues [ vi 1 ];
        Instance.Dintervals [ Interval.half_open ~lo:(vi 0) ~hi:(vi 50) ];
      |]
  in
  let out = ref [] in
  let _, used2 = Manager.answer m inst2 ~on_tuple:(fun _ t -> out := t :: !out) in
  check Alcotest.bool "not routed" false used2;
  check Alcotest.bool "still correct" true
    (Helpers.same_multiset !out (Helpers.brute_force_answer catalog inst2))

let test_budget_sizing () =
  let catalog, c_eqt, _ = setup () in
  let m = Manager.create ~default_f_max:2 catalog in
  (* the paper's example: UB ~ 1MB, F=2, At=50B -> ~10K entries *)
  let sample = [ Array.make 5 (vi 0) ] in
  (* 5 ints = 40 bytes *)
  let v = Manager.create_view ~ub_bytes:1_000_000 ~sample m c_eqt in
  let capacity = Pmv.Entry_store.capacity (View.store v) in
  check Alcotest.bool "capacity near UB/(F*At*1.04)" true
    (capacity > 10_000 && capacity < 13_000);
  (* duplicate registration rejected *)
  (match Manager.create_view ~capacity:5 m c_eqt with
  | _ -> Alcotest.fail "duplicate view accepted"
  | exception Invalid_argument _ -> ());
  (* missing sizing rejected *)
  let m2 = Manager.create catalog in
  match Manager.create_view m2 c_eqt with
  | _ -> Alcotest.fail "unsized view accepted"
  | exception Invalid_argument _ -> ()

let test_maintenance_attachment () =
  let catalog, c_eqt, _ = setup () in
  let m = Manager.create catalog in
  let mgr = Txn.create catalog in
  Manager.attach_maintenance m mgr;
  (* views created after attachment subscribe automatically *)
  let v = Manager.create_view ~capacity:30 ~f_max:3 m c_eqt in
  let inst = Instance.make c_eqt [| Instance.Dvalues [ vi 1 ]; Instance.Dvalues [ vi 1 ] |] in
  ignore (Manager.answer m inst ~on_tuple:(fun _ _ -> ()));
  check Alcotest.bool "warmed" true (View.n_tuples v > 0);
  ignore
    (Txn.run mgr
       [ Txn.Delete { rel = "s"; pred = Minirel_query.Predicate.Cmp (Minirel_query.Predicate.Eq, 1, vi 1) } ]);
  check Alcotest.bool "maintenance ran" true ((View.stats v).View.maint_removed > 0);
  (* answers stay consistent *)
  let out = ref [] in
  let st, _ = Manager.answer m inst ~on_tuple:(fun _ t -> out := t :: !out) in
  check Alcotest.int "no stale" 0 st.Pmv.Answer.stale_purged;
  check Alcotest.bool "consistent" true
    (Helpers.same_multiset !out (Helpers.brute_force_answer catalog inst));
  (* dropping the view detaches it *)
  Manager.drop_view m ~template:"eqt";
  check Alcotest.int "dropped" 0 (Manager.n_views m);
  ignore
    (Txn.run mgr
       [ Txn.Delete { rel = "s"; pred = Minirel_query.Predicate.Cmp (Minirel_query.Predicate.Eq, 1, vi 2) } ])

let test_report () =
  let catalog, c_eqt, c_iv = setup () in
  let m = Manager.create catalog in
  let _ = Manager.create_view ~capacity:20 m c_eqt in
  let _ = Manager.create_view ~capacity:20 m c_iv in
  let inst = Instance.make c_eqt [| Instance.Dvalues [ vi 1 ]; Instance.Dvalues [ vi 1 ] |] in
  ignore (Manager.answer m inst ~on_tuple:(fun _ _ -> ()));
  let rows = Manager.report m in
  check Alcotest.int "two rows" 2 (List.length rows);
  let eqt_row = List.find (fun r -> r.Manager.template = "eqt") rows in
  check Alcotest.int "queries counted" 1 eqt_row.Manager.queries;
  check Alcotest.bool "bytes accounted" true (Manager.total_bytes m >= eqt_row.Manager.bytes)

let suite =
  [
    Alcotest.test_case "create and route" `Quick test_create_and_route;
    Alcotest.test_case "budget sizing" `Quick test_budget_sizing;
    Alcotest.test_case "maintenance attachment" `Quick test_maintenance_attachment;
    Alcotest.test_case "report" `Quick test_report;
  ]
