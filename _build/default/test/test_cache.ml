(* Replacement policies: CLOCK second chance, 2Q staging/promotion,
   LRU/FIFO behaviour, capacity bounds and eviction callbacks. *)

module Policy = Minirel_cache.Policy
module Policies = Minirel_cache.Policies

let check = Alcotest.check

let outcome =
  Alcotest.testable
    (fun ppf -> function
      | `Resident -> Fmt.string ppf "resident"
      | `Admitted -> Fmt.string ppf "admitted"
      | `Rejected -> Fmt.string ppf "rejected")
    ( = )

let test_clock_basics () =
  let p = Minirel_cache.Clock.create ~capacity:2 in
  check outcome "cold miss" `Rejected (Policy.reference p 1);
  Policy.admit p 1;
  check outcome "now resident" `Resident (Policy.reference p 1);
  Policy.admit p 2;
  check Alcotest.int "size" 2 (Policy.size p);
  let evicted = ref [] in
  Policy.set_on_evict p (fun k -> evicted := k :: !evicted);
  (* both refbits are set at admission: the sweep clears them and evicts
     at the hand, i.e. key 1 *)
  Policy.admit p 3;
  check (Alcotest.list Alcotest.int) "hand eviction" [ 1 ] !evicted;
  (* now 3 has its bit set and 2 does not: admitting 4 gives 3 its
     second chance and evicts 2 *)
  Policy.admit p 4;
  check Alcotest.bool "3 survived (refbit)" true (Policy.mem p 3);
  check Alcotest.bool "2 evicted despite being older than 3" false (Policy.mem p 2);
  check (Alcotest.list Alcotest.int) "eviction order" [ 2; 1 ] !evicted

let test_clock_remove_reuses_slot () =
  let p = Minirel_cache.Clock.create ~capacity:2 in
  Policy.admit p 1;
  Policy.admit p 2;
  Policy.remove p 1;
  check Alcotest.int "size after remove" 1 (Policy.size p);
  Policy.admit p 3;
  check Alcotest.int "free slot reused" 2 (Policy.size p);
  check Alcotest.bool "2 still resident" true (Policy.mem p 2)

let test_two_q_staging () =
  let p = Minirel_cache.Two_q.create ~capacity:4 in
  (* first reference stages in A1, not resident *)
  check outcome "first ref staged" `Rejected (Policy.reference p 10);
  check Alcotest.bool "not resident after staging" false (Policy.mem p 10);
  (* second reference promotes to Am *)
  check outcome "second ref promotes" `Admitted (Policy.reference p 10);
  check Alcotest.bool "resident after promotion" true (Policy.mem p 10);
  check outcome "third ref hits" `Resident (Policy.reference p 10);
  check Alcotest.bool "2q does not admit on fill" false (Policy.admit_on_fill p)

let test_two_q_ghost_eviction () =
  (* A1 capacity = capacity/2 = 2 ghosts, FIFO *)
  let p = Minirel_cache.Two_q.create ~capacity:4 in
  check outcome "stage 1" `Rejected (Policy.reference p 1);
  check outcome "stage 2" `Rejected (Policy.reference p 2);
  check outcome "stage 3 evicts ghost 1" `Rejected (Policy.reference p 3);
  (* 1 fell out of A1, so it stages again (evicting ghost 2) *)
  check outcome "1 must stage again" `Rejected (Policy.reference p 1);
  (* 3 is still ghost-staged and promotes *)
  check outcome "3 promotes" `Admitted (Policy.reference p 3);
  (* 2's ghost is gone *)
  check outcome "2 stages again" `Rejected (Policy.reference p 2)

let test_lru_order () =
  let p = Minirel_cache.Lru.create ~capacity:2 in
  Policy.admit p 1;
  Policy.admit p 2;
  ignore (Policy.reference p 1);
  (* 2 is now least recently used *)
  Policy.admit p 3;
  check Alcotest.bool "1 kept" true (Policy.mem p 1);
  check Alcotest.bool "2 evicted" false (Policy.mem p 2)

let test_fifo_order () =
  let p = Minirel_cache.Fifo.create ~capacity:2 in
  Policy.admit p 1;
  Policy.admit p 2;
  ignore (Policy.reference p 1);
  (* recency is ignored: 1 is oldest and goes first *)
  Policy.admit p 3;
  check Alcotest.bool "1 evicted despite recency" false (Policy.mem p 1);
  check Alcotest.bool "2 kept" true (Policy.mem p 2)

let test_two_q_full () =
  let p = Minirel_cache.Two_q_full.create ~capacity:8 in
  (* cold keys are admitted immediately (into A1in) *)
  check outcome "cold admits" `Admitted (Policy.reference p 1);
  check Alcotest.bool "resident in A1in" true (Policy.mem p 1);
  check outcome "A1in hit does not promote" `Resident (Policy.reference p 1);
  (* push 1 out of A1in (capacity/4 = 2) into the ghost queue *)
  ignore (Policy.reference p 2);
  ignore (Policy.reference p 3);
  ignore (Policy.reference p 4);
  check Alcotest.bool "1 spilled from A1in" false (Policy.mem p 1);
  (* referencing the ghost promotes to Am *)
  check outcome "ghost promotes to Am" `Admitted (Policy.reference p 1);
  check Alcotest.bool "now in Am" true (Policy.mem p 1);
  (* Am hits keep it *)
  check outcome "Am hit" `Resident (Policy.reference p 1);
  check Alcotest.bool "never admits on fill" false (Policy.admit_on_fill p);
  (* capacity 1 degenerates safely *)
  let tiny = Minirel_cache.Two_q_full.create ~capacity:1 in
  ignore (Policy.reference tiny 1);
  ignore (Policy.reference tiny 2);
  check Alcotest.int "tiny stays bounded" 1 (Policy.size tiny)

let test_stats () =
  let p = Minirel_cache.Clock.create ~capacity:1 in
  ignore (Policy.reference p 1);
  Policy.admit p 1;
  ignore (Policy.reference p 1);
  let s = Policy.stats p in
  check Alcotest.int "references" 2 s.Minirel_cache.Cache_stats.references;
  check Alcotest.int "hits" 1 s.Minirel_cache.Cache_stats.hits;
  check Alcotest.int "admissions" 1 s.Minirel_cache.Cache_stats.admissions;
  check Alcotest.bool "hit ratio" true
    (abs_float (Minirel_cache.Cache_stats.hit_ratio s -. 0.5) < 1e-9)

let prop_capacity_never_exceeded =
  QCheck2.Test.make ~name:"no policy exceeds its capacity" ~count:250
    QCheck2.Gen.(
      triple (int_range 1 8) (int_range 0 4) (list_size (int_range 1 200) (int_range 0 20)))
    (fun (capacity, which, keys) ->
      let kind = List.nth Policies.all which in
      let p = Policies.make kind ~capacity in
      List.iter
        (fun k ->
          match Policy.reference p k with
          | `Resident | `Admitted -> ()
          | `Rejected -> if Policy.admit_on_fill p then Policy.admit p k)
        keys;
      Policy.size p <= capacity)

let prop_lru_matches_model =
  QCheck2.Test.make ~name:"LRU matches a list model" ~count:200
    QCheck2.Gen.(pair (int_range 1 6) (list_size (int_range 1 150) (int_range 0 15)))
    (fun (capacity, keys) ->
      let p = Minirel_cache.Lru.create ~capacity in
      let model = ref [] in
      List.iter
        (fun k ->
          (match Policy.reference p k with
          | `Resident -> ()
          | `Rejected -> Policy.admit p k
          | `Admitted -> ());
          model := k :: List.filter (fun x -> x <> k) !model;
          if List.length !model > capacity then
            model := List.filteri (fun i _ -> i < capacity) !model)
        keys;
      List.for_all (Policy.mem p) !model && Policy.size p = List.length !model)

let prop_clock_eviction_consistency =
  QCheck2.Test.make ~name:"CLOCK eviction callback matches membership changes" ~count:200
    QCheck2.Gen.(pair (int_range 1 5) (list_size (int_range 1 100) (int_range 0 12)))
    (fun (capacity, keys) ->
      let p = Minirel_cache.Clock.create ~capacity in
      let resident = Hashtbl.create 16 in
      Policy.set_on_evict p (fun k -> Hashtbl.remove resident k);
      List.iter
        (fun k ->
          match Policy.reference p k with
          | `Resident -> ()
          | `Rejected ->
              Policy.admit p k;
              Hashtbl.replace resident k ()
          | `Admitted -> ())
        keys;
      Hashtbl.length resident = Policy.size p
      && Hashtbl.fold (fun k () ok -> ok && Policy.mem p k) resident true)

let suite =
  [
    Alcotest.test_case "clock basics" `Quick test_clock_basics;
    Alcotest.test_case "clock remove" `Quick test_clock_remove_reuses_slot;
    Alcotest.test_case "2q staging and promotion" `Quick test_two_q_staging;
    Alcotest.test_case "2q ghost eviction" `Quick test_two_q_ghost_eviction;
    Alcotest.test_case "lru order" `Quick test_lru_order;
    Alcotest.test_case "fifo ignores recency" `Quick test_fifo_order;
    Alcotest.test_case "full 2q" `Quick test_two_q_full;
    Alcotest.test_case "stats" `Quick test_stats;
    QCheck_alcotest.to_alcotest prop_capacity_never_exceeded;
    QCheck_alcotest.to_alcotest prop_lru_matches_model;
    QCheck_alcotest.to_alcotest prop_clock_eviction_consistency;
  ]
