open Minirel_storage
module Btree = Minirel_index.Btree

let check = Alcotest.check
let key i : Tuple.t = [| Value.Int i |]
let rid i = Rid.make ~page:i ~slot:0

let test_insert_find () =
  let t = Btree.create ~b:2 () in
  for i = 1 to 100 do
    Btree.insert t (key i) (rid i)
  done;
  check Alcotest.int "n_keys" 100 (Btree.n_keys t);
  check Alcotest.int "n_entries" 100 (Btree.n_entries t);
  check Alcotest.bool "height grew" true (Btree.height t > 1);
  for i = 1 to 100 do
    match Btree.find t (key i) with
    | [ r ] -> check Alcotest.bool "rid" true (Rid.equal r (rid i))
    | other -> Alcotest.failf "key %d: %d rids" i (List.length other)
  done;
  check (Alcotest.list Alcotest.int) "missing key" []
    (List.map (fun (r : Rid.t) -> r.Rid.page) (Btree.find t (key 999)));
  Btree.validate t

let test_duplicates () =
  let t = Btree.create ~b:2 () in
  Btree.insert t (key 5) (rid 1);
  Btree.insert t (key 5) (rid 2);
  Btree.insert t (key 5) (rid 3);
  check Alcotest.int "one key" 1 (Btree.n_keys t);
  check Alcotest.int "three entries" 3 (Btree.n_entries t);
  check Alcotest.int "find returns all" 3 (List.length (Btree.find t (key 5)));
  check Alcotest.bool "delete one occurrence" true (Btree.delete t (key 5) (rid 2));
  check Alcotest.int "two left" 2 (List.length (Btree.find t (key 5)));
  check Alcotest.bool "delete absent rid" false (Btree.delete t (key 5) (rid 99));
  Btree.validate t

let test_delete_rebalance () =
  let t = Btree.create ~b:2 () in
  let n = 300 in
  for i = 1 to n do
    Btree.insert t (key i) (rid i)
  done;
  (* delete in a mixed order and validate along the way *)
  let order = List.init n (fun i -> if i mod 2 = 0 then (i / 2) + 1 else n - (i / 2)) in
  List.iteri
    (fun step i ->
      check Alcotest.bool "delete present" true (Btree.delete t (key i) (rid i));
      if step mod 17 = 0 then Btree.validate t)
    order;
  check Alcotest.int "empty" 0 (Btree.n_keys t);
  check Alcotest.int "height back to 1" 1 (Btree.height t);
  Btree.validate t

let test_range () =
  let t = Btree.create ~b:2 () in
  List.iter (fun i -> Btree.insert t (key i) (rid i)) [ 1; 3; 5; 7; 9; 11 ];
  let collect ~lo ~hi =
    let acc = ref [] in
    Btree.range t ~lo ~hi (fun k _ -> acc := Value.int_exn k.(0) :: !acc);
    List.rev !acc
  in
  check (Alcotest.list Alcotest.int) "closed range" [ 3; 5; 7 ]
    (collect ~lo:(Btree.Inclusive (key 3)) ~hi:(Btree.Inclusive (key 7)));
  check (Alcotest.list Alcotest.int) "open range" [ 5 ]
    (collect ~lo:(Btree.Exclusive (key 3)) ~hi:(Btree.Exclusive (key 7)));
  check (Alcotest.list Alcotest.int) "unbounded low" [ 1; 3; 5 ]
    (collect ~lo:Btree.Unbounded ~hi:(Btree.Inclusive (key 5)));
  check (Alcotest.list Alcotest.int) "unbounded both" [ 1; 3; 5; 7; 9; 11 ]
    (collect ~lo:Btree.Unbounded ~hi:Btree.Unbounded);
  check (Alcotest.list Alcotest.int) "empty range" []
    (collect ~lo:(Btree.Inclusive (key 100)) ~hi:Btree.Unbounded)

let test_composite_keys () =
  let t = Btree.create ~b:2 () in
  let ck a b : Tuple.t = [| Value.Int a; Value.Str b |] in
  Btree.insert t (ck 1 "b") (rid 1);
  Btree.insert t (ck 1 "a") (rid 2);
  Btree.insert t (ck 2 "a") (rid 3);
  let acc = ref [] in
  Btree.iter t (fun k _ -> acc := k :: !acc);
  let keys = List.rev !acc in
  check Alcotest.int "three keys" 3 (List.length keys);
  check Helpers.tuple "lexicographic first" (ck 1 "a") (List.nth keys 0);
  check Helpers.tuple "lexicographic last" (ck 2 "a") (List.nth keys 2)

let test_visit_hook () =
  let t = Btree.create ~b:2 () in
  for i = 1 to 200 do
    Btree.insert t (key i) (rid i)
  done;
  let visits = ref 0 in
  Btree.set_visit_hook t (fun _ -> incr visits);
  ignore (Btree.find t (key 100));
  check Alcotest.int "visits = height" (Btree.height t) !visits

(* Model-based qcheck: random insert/delete interleavings must agree
   with a sorted association list, and structural invariants must hold. *)
let prop_vs_model =
  QCheck2.Test.make ~name:"btree matches reference model under random ops" ~count:120
    QCheck2.Gen.(list_size (int_range 1 400) (pair bool (int_range 0 60)))
    (fun ops ->
      let t = Btree.create ~b:2 () in
      let model = Hashtbl.create 32 in
      let next_rid = ref 0 in
      List.iter
        (fun (is_insert, k) ->
          let existing = Option.value ~default:[] (Hashtbl.find_opt model k) in
          if is_insert then begin
            incr next_rid;
            let r = rid !next_rid in
            Btree.insert t (key k) r;
            Hashtbl.replace model k (r :: existing)
          end
          else
            match existing with
            | [] -> ignore (Btree.delete t (key k) (rid 999_999))
            | r :: rest ->
                ignore (Btree.delete t (key k) r);
                if rest = [] then Hashtbl.remove model k else Hashtbl.replace model k rest)
        ops;
      Btree.validate t;
      Hashtbl.fold
        (fun k rids ok ->
          ok
          && List.sort Rid.compare (Btree.find t (key k)) = List.sort Rid.compare rids)
        model true
      && Btree.n_keys t = Hashtbl.length model)

let prop_range_vs_model =
  QCheck2.Test.make ~name:"btree range scan equals filtered model" ~count:150
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 150) (int_range 0 80))
        (int_range 0 80) (int_range 0 80))
    (fun (keys, a, b) ->
      let lo_v, hi_v = (min a b, max a b) in
      let t = Btree.create ~b:3 () in
      List.iteri (fun i k -> Btree.insert t (key k) (rid i)) keys;
      let expect =
        List.sort_uniq Int.compare (List.filter (fun k -> k >= lo_v && k <= hi_v) keys)
      in
      let got = ref [] in
      Btree.range t ~lo:(Btree.Inclusive (key lo_v)) ~hi:(Btree.Inclusive (key hi_v))
        (fun k _ -> got := Value.int_exn k.(0) :: !got);
      List.rev !got = expect)

let test_bulk_load () =
  (* equivalent to repeated inserts, at every size around node boundaries *)
  List.iter
    (fun n ->
      let pairs = List.init n (fun i -> (key (i * 2), [ rid i ])) in
      let t = Btree.bulk_load ~b:2 pairs in
      Btree.validate t;
      check Alcotest.int (Fmt.str "n_keys at %d" n) n (Btree.n_keys t);
      List.iter
        (fun (k, rids) ->
          check Alcotest.bool "find" true
            (List.for_all2 Rid.equal (Btree.find t k) rids))
        pairs;
      (* the loaded tree supports further inserts and deletes *)
      Btree.insert t (key 1) (rid 999);
      check Alcotest.int "insert after load" 1 (List.length (Btree.find t (key 1)));
      if n > 0 then ignore (Btree.delete t (key 0) (rid 0));
      Btree.validate t)
    [ 0; 1; 2; 3; 4; 5; 7; 8; 9; 15; 16; 17; 63; 64; 65; 200 ];
  (* error cases *)
  (match Btree.bulk_load ~b:2 [ (key 2, [ rid 1 ]); (key 1, [ rid 2 ]) ] with
  | _ -> Alcotest.fail "unsorted accepted"
  | exception Invalid_argument _ -> ());
  match Btree.bulk_load ~b:2 [ (key 1, []) ] with
  | _ -> Alcotest.fail "empty rid list accepted"
  | exception Invalid_argument _ -> ()

let prop_bulk_load_equals_inserts =
  QCheck2.Test.make ~name:"bulk load == repeated inserts" ~count:100
    QCheck2.Gen.(list_size (int_range 0 300) (int_range 0 500))
    (fun ks ->
      let distinct = List.sort_uniq Int.compare ks in
      let pairs = List.map (fun k -> (key k, [ rid k ])) distinct in
      let loaded = Btree.bulk_load ~b:2 pairs in
      Btree.validate loaded;
      let inserted = Btree.create ~b:2 () in
      List.iter (fun k -> Btree.insert inserted (key k) (rid k)) distinct;
      Btree.to_list loaded = Btree.to_list inserted)

let suite =
  [
    Alcotest.test_case "insert and find" `Quick test_insert_find;
    Alcotest.test_case "bulk load" `Quick test_bulk_load;
    QCheck_alcotest.to_alcotest prop_bulk_load_equals_inserts;
    Alcotest.test_case "duplicate rids" `Quick test_duplicates;
    Alcotest.test_case "delete with rebalancing" `Quick test_delete_rebalance;
    Alcotest.test_case "range scans" `Quick test_range;
    Alcotest.test_case "composite keys" `Quick test_composite_keys;
    Alcotest.test_case "visit hook" `Quick test_visit_hook;
    QCheck_alcotest.to_alcotest prop_vs_model;
    QCheck_alcotest.to_alcotest prop_range_vs_model;
  ]
