open Minirel_storage

let check = Alcotest.check

let sch = Schema.create "h" [ ("k", Schema.Tint); ("v", Schema.Tstr) ]
let mk k v : Tuple.t = [| Value.Int k; Value.Str v |]

let fresh ?(pool_pages = 100) ?(slots_per_page = 4) () =
  let pool = Buffer_pool.create ~capacity:pool_pages () in
  (pool, Heap_file.create ~slots_per_page pool sch)

let test_insert_fetch () =
  let _, h = fresh () in
  let rid = Heap_file.insert h (mk 1 "a") in
  check (Alcotest.option Helpers.tuple) "fetch" (Some (mk 1 "a")) (Heap_file.fetch h rid);
  check Alcotest.int "count" 1 (Heap_file.n_tuples h);
  check (Alcotest.option Helpers.tuple) "missing page" None
    (Heap_file.fetch h (Rid.make ~page:99 ~slot:0))

let test_schema_enforced () =
  let _, h = fresh () in
  match Heap_file.insert h [| Value.Str "bad" |] with
  | _ -> Alcotest.fail "non-conforming tuple accepted"
  | exception Invalid_argument _ -> ()

let test_delete_and_reuse () =
  let _, h = fresh ~slots_per_page:2 () in
  let r1 = Heap_file.insert h (mk 1 "a") in
  let _r2 = Heap_file.insert h (mk 2 "b") in
  let _r3 = Heap_file.insert h (mk 3 "c") in
  check Alcotest.int "pages" 2 (Heap_file.n_pages h);
  let old = Heap_file.delete h r1 in
  check Helpers.tuple "deleted tuple returned" (mk 1 "a") old;
  check Alcotest.int "count after delete" 2 (Heap_file.n_tuples h);
  Alcotest.check_raises "double delete" Not_found (fun () -> ignore (Heap_file.delete h r1));
  (* freed slot is reused before new pages are allocated *)
  let r4 = Heap_file.insert h (mk 4 "d") in
  check Alcotest.int "page reused" r1.Rid.page r4.Rid.page;
  check Alcotest.int "no page growth" 2 (Heap_file.n_pages h)

let test_update () =
  let _, h = fresh () in
  let rid = Heap_file.insert h (mk 1 "a") in
  Heap_file.update h rid (mk 1 "z");
  check (Alcotest.option Helpers.tuple) "updated" (Some (mk 1 "z")) (Heap_file.fetch h rid);
  Alcotest.check_raises "update empty slot" Not_found (fun () ->
      Heap_file.update h (Rid.make ~page:0 ~slot:3) (mk 9 "x"))

let test_iter_fold () =
  let _, h = fresh ~slots_per_page:3 () in
  for i = 1 to 10 do
    ignore (Heap_file.insert h (mk i "x"))
  done;
  let seen = Heap_file.fold h (fun acc _ t -> Value.int_exn t.(0) :: acc) [] in
  check (Alcotest.list Alcotest.int) "all tuples visited" (List.init 10 (fun i -> i + 1))
    (List.sort Int.compare seen);
  check Alcotest.int "size bytes" (10 * (8 + 4 + 1)) (Heap_file.size_bytes h)

let test_io_charging () =
  let pool, h = fresh ~pool_pages:2 ~slots_per_page:1 () in
  let stats = Buffer_pool.stats pool in
  Io_stats.reset stats;
  (* 5 pages of one tuple each through a 2-page pool *)
  let rids = List.init 5 (fun i -> Heap_file.insert h (mk i "x")) in
  check Alcotest.int "writes are misses without reads" 0 stats.Io_stats.reads;
  Io_stats.reset stats;
  List.iter (fun rid -> ignore (Heap_file.fetch h rid)) rids;
  (* pool holds 2 of 5 pages: at least 3 fetches miss *)
  check Alcotest.bool "read misses charged" true (stats.Io_stats.reads >= 3);
  Buffer_pool.flush pool;
  check Alcotest.bool "dirty pages written on flush" true (stats.Io_stats.writes >= 1)

let prop_heap_vs_model =
  (* random insert/delete sequence behaves like a list-based model *)
  QCheck2.Test.make ~name:"heap file contents match reference model" ~count:100
    QCheck2.Gen.(list_size (int_range 1 120) (pair bool small_nat))
    (fun ops ->
      let _, h = fresh ~pool_pages:1000 ~slots_per_page:3 () in
      let model = Hashtbl.create 16 in
      let rids = ref [] in
      List.iter
        (fun (is_insert, k) ->
          if is_insert || !rids = [] then begin
            let t = mk k "v" in
            let rid = Heap_file.insert h t in
            rids := rid :: !rids;
            Hashtbl.replace model rid t
          end
          else begin
            match !rids with
            | rid :: rest ->
                rids := rest;
                ignore (Heap_file.delete h rid);
                Hashtbl.remove model rid
            | [] -> ()
          end)
        ops;
      let actual = Heap_file.fold h (fun acc rid t -> (rid, t) :: acc) [] in
      List.length actual = Hashtbl.length model
      && List.for_all
           (fun (rid, t) ->
             match Hashtbl.find_opt model rid with
             | Some expect -> Tuple.equal t expect
             | None -> false)
           actual)

let suite =
  [
    Alcotest.test_case "insert and fetch" `Quick test_insert_fetch;
    Alcotest.test_case "schema enforced" `Quick test_schema_enforced;
    Alcotest.test_case "delete and slot reuse" `Quick test_delete_and_reuse;
    Alcotest.test_case "update" `Quick test_update;
    Alcotest.test_case "iter and fold" `Quick test_iter_fold;
    Alcotest.test_case "io charging" `Quick test_io_charging;
    QCheck_alcotest.to_alcotest prop_heap_vs_model;
  ]
