(* Trace recording, persistence, replay and advisor feeding. *)

module Shell = Minirel_shell.Shell
module Trace = Minirel_shell.Trace

let check = Alcotest.check
let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let statements =
  [
    "create table t (a int, b int)";
    "create index t_a on t (a)";
    "insert into t values (1, 10)";
    "insert into t values (1, 20)";
    "insert into t values (2, 30)";
    "select t.b from t where (t.a = 1)";
    "select t.b from t where (t.a = 1)";
    "select t.b from t where (t.a = 2)";
  ]

let test_record_and_replay () =
  let shell = Shell.create (Helpers.fresh_catalog ()) in
  let trace = Trace.create () in
  Trace.attach trace shell;
  List.iter (fun sql -> ignore (Shell.exec shell sql)) statements;
  check Alcotest.int "all recorded" (List.length statements) (Trace.length trace);
  (* a failing statement is not recorded *)
  (try ignore (Shell.exec shell "insert into nope values (1)") with _ -> ());
  check Alcotest.int "failure skipped" (List.length statements) (Trace.length trace);
  (* persist and reload *)
  let file = tmp "pmv_trace_test.sql" in
  Trace.save trace ~filename:file;
  let loaded = Trace.load ~filename:file in
  check (Alcotest.list Alcotest.string) "roundtrip" (Trace.entries trace)
    (Trace.entries loaded);
  (* replay rebuilds an identical database *)
  let shell2 = Shell.create (Helpers.fresh_catalog ()) in
  let ok, failed = Trace.replay loaded shell2 in
  check Alcotest.int "all replayed" (List.length statements) ok;
  check Alcotest.int "no failures" 0 failed;
  (match Shell.exec shell2 "select t.b from t where (t.a = 1)" with
  | Shell.Rows { total = 2; _ } -> ()
  | _ -> Alcotest.fail "replayed data wrong");
  Sys.remove file

let test_observe_into_advisor () =
  let shell = Shell.create (Helpers.fresh_catalog ()) in
  let trace = Trace.create () in
  Trace.attach trace shell;
  List.iter (fun sql -> ignore (Shell.exec shell sql)) statements;
  let advisor = Pmv.Advisor.create () in
  let observed = Trace.observe trace (Shell.session shell) advisor in
  check Alcotest.int "selects observed" 3 observed;
  check Alcotest.int "one template" 1 (Pmv.Advisor.n_templates advisor);
  match Pmv.Advisor.recommend advisor ~budget_bytes:100_000 ~min_queries:2 with
  | [ r ] -> check Alcotest.int "trace queries counted" 3 r.Pmv.Advisor.queries_seen
  | other -> Alcotest.failf "expected one recommendation, got %d" (List.length other)

let suite =
  [
    Alcotest.test_case "record, save, load, replay" `Quick test_record_and_replay;
    Alcotest.test_case "observe into advisor" `Quick test_observe_into_advisor;
  ]
