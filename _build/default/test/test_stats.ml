open Minirel_storage
open Minirel_query
module Stats = Minirel_exec.Stats
module Planner = Minirel_exec.Planner
module Executor = Minirel_exec.Executor

let check = Alcotest.check
let vi i = Value.Int i

let setup () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs ~n_r:200 ~n_s:120 catalog;
  (catalog, Stats.analyze catalog)

let test_relation_stats () =
  let _, st = setup () in
  (match Stats.relation st "r" with
  | Some rs ->
      check Alcotest.int "tuple count" 200 rs.Stats.n_tuples;
      check Alcotest.int "four attrs" 4 (List.length rs.Stats.attrs)
  | None -> Alcotest.fail "no stats for r");
  check (Alcotest.option Alcotest.int) "n_tuples" (Some 120) (Stats.n_tuples st "s");
  check (Alcotest.option Alcotest.int) "unknown relation" None (Stats.n_tuples st "zzz")

let test_attr_stats () =
  let _, st = setup () in
  match Stats.attr st ~rel:"r" ~attr:"f" with
  | Some a ->
      check Alcotest.int "values" 200 a.Stats.n_values;
      (* f = rkey mod 10 -> 10 distinct *)
      check Alcotest.int "distinct" 10 a.Stats.n_distinct;
      check (Alcotest.option Helpers.value) "min" (Some (vi 0)) a.Stats.min_v;
      check (Alcotest.option Helpers.value) "max" (Some (vi 9)) a.Stats.max_v;
      check Alcotest.int "bucket counts total" 200 (Array.fold_left ( + ) 0 a.Stats.bucket_counts)
  | None -> Alcotest.fail "no stats for r.f"

let test_eq_selectivity () =
  let _, st = setup () in
  (* r.f is uniform over 10 values: selectivity ~0.1 *)
  let sel = Stats.eq_selectivity st ~rel:"r" ~attr:"f" (vi 3) in
  check Alcotest.bool "uniform selectivity" true (sel > 0.05 && sel < 0.2);
  (* rkey is unique: selectivity ~1/200 *)
  let sel_key = Stats.eq_selectivity st ~rel:"r" ~attr:"rkey" (vi 17) in
  check Alcotest.bool "key selectivity small" true (sel_key < 0.05);
  check Alcotest.bool "key more selective than f" true (sel_key < sel);
  check (Alcotest.float 1e-9) "unknown attr" 1.0
    (Stats.eq_selectivity st ~rel:"r" ~attr:"nope" (vi 1))

let test_range_selectivity () =
  let _, st = setup () in
  (* s.e is 1..120 uniform; [1,60] covers about half *)
  let half =
    Stats.range_selectivity st ~rel:"s" ~attr:"e" (Interval.closed ~lo:(vi 1) ~hi:(vi 60))
  in
  check Alcotest.bool "about half" true (half > 0.3 && half < 0.7);
  let all = Stats.range_selectivity st ~rel:"s" ~attr:"e" Interval.full in
  check (Alcotest.float 1e-9) "full range" 1.0 all

let test_condition_cardinality () =
  let _, st = setup () in
  let two_vals = Instance.Dvalues [ vi 1; vi 2 ] in
  let c = Stats.condition_cardinality st ~rel:"r" ~attr:"f" two_vals in
  (* 2 of 10 uniform values over 200 rows ~ 40 *)
  check Alcotest.bool "cardinality estimate" true (c > 20.0 && c < 60.0)

let test_planner_uses_stats () =
  (* r.f has 10 distinct values, r.rkey is unique. A query with
     selections on both should drive from rkey when stats are given. *)
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs ~n_r:200 ~n_s:120 catalog;
  ignore (Minirel_index.Catalog.create_index catalog ~rel:"r" ~name:"r_rkey" ~attrs:[ "rkey" ] ());
  let spec =
    {
      Helpers.eqt_spec with
      Template.selections =
        [|
          Template.Eq_sel (Template.attr_ref ~rel:0 ~attr:"f");
          Template.Eq_sel (Template.attr_ref ~rel:0 ~attr:"rkey");
        |];
    }
  in
  let compiled = Template.compile catalog spec in
  let inst =
    Instance.make compiled [| Instance.Dvalues [ vi 3 ]; Instance.Dvalues [ vi 13 ] |]
  in
  let st = Minirel_exec.Stats.analyze catalog in
  let uses_index name plan =
    let s = Fmt.str "%a" Minirel_exec.Plan.pp plan in
    (* the driving access is the innermost leaf: check the index name *)
    let contains hay needle =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    contains s name
  in
  let without = Planner.plan_query catalog inst in
  let with_stats = Planner.plan_query ~stats:st catalog inst in
  check Alcotest.bool "first-index default drives from f" true (uses_index "r_f" without);
  check Alcotest.bool "stats drive from the unique key" true (uses_index "r_rkey" with_stats);
  (* both plans agree with ground truth *)
  let expect = Helpers.brute_force_answer catalog inst in
  check Alcotest.bool "plain plan correct" true
    (Helpers.same_multiset (Executor.run_to_list catalog without) expect);
  check Alcotest.bool "stats plan correct" true
    (Helpers.same_multiset (Executor.run_to_list catalog with_stats) expect)

let test_stats_join_ordering () =
  (* T2 drives from orders; with stats the planner joins customer
     (fanout 1 on custkey) before lineitem (fanout 4 on orderkey) *)
  let catalog = Helpers.fresh_catalog ~pool_pages:20_000 () in
  ignore (Minirel_workload.Tpcr.generate catalog (Minirel_workload.Tpcr.params_for_scale 0.002));
  let t2 = Template.compile catalog Minirel_workload.Querygen.t2_spec in
  let inst =
    Instance.make t2
      [| Instance.Dvalues [ vi 1 ]; Instance.Dvalues [ vi 1 ]; Instance.Dvalues [ vi 0 ] |]
  in
  let st = Stats.analyze catalog in
  let plan_str plan = Fmt.str "%a" Minirel_exec.Plan.pp plan in
  let index_of hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = if i + nl > hl then None else if String.sub hay i nl = needle then Some i else go (i + 1) in
    go 0
  in
  let default_plan = plan_str (Planner.plan_query catalog inst) in
  let stats_plan = plan_str (Planner.plan_query ~stats:st catalog inst) in
  (* without stats: drive from the first indexed selection (orderdate),
     joining in template order *)
  check Alcotest.bool "default drives from orderdate" true
    (index_of default_plan "ixlookup(orders.orders_orderdate" <> None);
  (match (index_of default_plan "lineitem_orderkey", index_of default_plan "customer_custkey") with
  | Some l, Some c -> check Alcotest.bool "template join order without stats" true (l < c)
  | _ -> Alcotest.fail "expected both joins in the default plan");
  (* with stats: the driver is the estimated-most-selective condition
     (the hot-but-few-distinct nationkey beats orderdate here) and the
     join order follows estimated fanouts *)
  check Alcotest.bool "stats change the plan" true (default_plan <> stats_plan);
  check Alcotest.bool "stats drive from nationkey" true
    (index_of stats_plan "ixlookup(customer.customer_nationkey" <> None);
  (* both orders produce the same answer *)
  let expect = Helpers.brute_force_answer catalog inst in
  check Alcotest.bool "stats order correct" true
    (Helpers.same_multiset (Executor.run_to_list catalog (Planner.plan_query ~stats:st catalog inst)) expect);
  check Alcotest.bool "default order correct" true
    (Helpers.same_multiset (Executor.run_to_list catalog (Planner.plan_query catalog inst)) expect)

let suite =
  [
    Alcotest.test_case "relation stats" `Quick test_relation_stats;
    Alcotest.test_case "stats-driven join ordering" `Quick test_stats_join_ordering;
    Alcotest.test_case "attribute stats" `Quick test_attr_stats;
    Alcotest.test_case "eq selectivity" `Quick test_eq_selectivity;
    Alcotest.test_case "range selectivity" `Quick test_range_selectivity;
    Alcotest.test_case "condition cardinality" `Quick test_condition_cardinality;
    Alcotest.test_case "planner uses stats" `Quick test_planner_uses_stats;
  ]
