module Sizing = Pmv.Sizing
module Hitprob = Pmv_sim.Hitprob
module Policies = Minirel_cache.Policies

let check = Alcotest.check

(* --- sizing (Section 3.2 / 4.1 accounting) --- *)

let test_paper_example () =
  (* L = 10K, F = 2, At = 50B: "the size of V_PM is no more than 1MB" *)
  let fp = Sizing.footprint_bytes ~l:10_000 ~f_max:2 ~avg_tuple_bytes:50 in
  check Alcotest.bool "about 1MB" true (fp >= 1_000_000 && fp <= 1_100_000)

let test_max_entries () =
  let t = { Sizing.ub_bytes = 1_040_000; f_max = 2; avg_tuple_bytes = 50 } in
  let l = Sizing.max_entries t in
  check Alcotest.bool "near 10K" true (l >= 9_900 && l <= 10_100);
  (* the derived footprint respects UB *)
  check Alcotest.bool "footprint under budget" true
    (Sizing.footprint_bytes ~l ~f_max:2 ~avg_tuple_bytes:50 <= t.Sizing.ub_bytes);
  match Sizing.max_entries { t with Sizing.ub_bytes = 0 } with
  | _ -> Alcotest.fail "zero budget accepted"
  | exception Invalid_argument _ -> ()

let test_two_q_budget () =
  check Alcotest.int "L = 1.02N" 10_000 (Sizing.two_q_am_of_clock_l 10_200)

(* --- hit probability simulation (Section 4.1) --- *)

let small cfg = { cfg with Hitprob.universe = 20_000; n = 600; warmup = 30_000; measure = 30_000 }

let test_deterministic () =
  let cfg = small Hitprob.scaled_default in
  let a = Hitprob.run cfg and b = Hitprob.run cfg in
  check (Alcotest.float 1e-12) "same seed same result" a.Hitprob.hit_prob b.Hitprob.hit_prob

let test_hit_prob_increases_with_h () =
  let cfg = small Hitprob.scaled_default in
  let p1 = (Hitprob.run { cfg with Hitprob.h = 1 }).Hitprob.hit_prob in
  let p3 = (Hitprob.run { cfg with Hitprob.h = 3 }).Hitprob.hit_prob in
  let p5 = (Hitprob.run { cfg with Hitprob.h = 5 }).Hitprob.hit_prob in
  check Alcotest.bool "h=3 > h=1" true (p3 > p1);
  check Alcotest.bool "h=5 > h=3" true (p5 >= p3);
  check Alcotest.bool "h=5 near 1" true (p5 > 0.9)

let test_hit_prob_increases_with_n () =
  let cfg = small Hitprob.scaled_default in
  let small_n = (Hitprob.run { cfg with Hitprob.n = 200 }).Hitprob.hit_prob in
  let big_n = (Hitprob.run { cfg with Hitprob.n = 2_000 }).Hitprob.hit_prob in
  check Alcotest.bool "bigger PMV hits more" true (big_n > small_n)

let test_skew_helps () =
  let cfg = small Hitprob.scaled_default in
  let hi = (Hitprob.run { cfg with Hitprob.alpha = 1.07 }).Hitprob.hit_prob in
  let lo = (Hitprob.run { cfg with Hitprob.alpha = 1.01 }).Hitprob.hit_prob in
  check Alcotest.bool "alpha=1.07 beats 1.01" true (hi > lo)

let test_two_q_beats_clock () =
  (* the paper's consistent finding across Figures 6-7 *)
  let cfg = small Hitprob.scaled_default in
  let clock = (Hitprob.run { cfg with Hitprob.policy = Policies.Clock }).Hitprob.hit_prob in
  let two_q = (Hitprob.run { cfg with Hitprob.policy = Policies.Two_q }).Hitprob.hit_prob in
  check Alcotest.bool "2Q >= CLOCK" true (two_q >= clock -. 0.01)

let test_capacity_accounting () =
  let cfg = { (small Hitprob.scaled_default) with Hitprob.n = 1_000 } in
  let r_clock = Hitprob.run { cfg with Hitprob.policy = Policies.Clock } in
  check Alcotest.int "clock gets 1.02N" 1_020 r_clock.Hitprob.capacity;
  let r2q = Hitprob.run { cfg with Hitprob.policy = Policies.Two_q } in
  check Alcotest.int "2q Am gets N" 1_000 r2q.Hitprob.capacity;
  check Alcotest.bool "resident bounded" true (r_clock.Hitprob.resident <= 1_020)

let suite =
  [
    Alcotest.test_case "paper sizing example" `Quick test_paper_example;
    Alcotest.test_case "max entries" `Quick test_max_entries;
    Alcotest.test_case "2q budget" `Quick test_two_q_budget;
    Alcotest.test_case "sim deterministic" `Quick test_deterministic;
    Alcotest.test_case "hit prob grows with h" `Slow test_hit_prob_increases_with_h;
    Alcotest.test_case "hit prob grows with N" `Slow test_hit_prob_increases_with_n;
    Alcotest.test_case "skew helps" `Slow test_skew_helps;
    Alcotest.test_case "2Q beats CLOCK" `Slow test_two_q_beats_clock;
    Alcotest.test_case "capacity accounting" `Quick test_capacity_accounting;
  ]
