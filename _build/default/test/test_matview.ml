open Minirel_storage
open Minirel_query
module Matview = Minirel_matview.Matview
module Mv_cost = Minirel_matview.Mv_cost
module Txn = Minirel_txn.Txn
module Catalog = Minirel_index.Catalog

let check = Alcotest.check
let vi i = Value.Int i

let setup () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs ~n_r:60 ~n_s:40 ~n_join:20 catalog;
  let c = Template.compile catalog Helpers.eqt_spec in
  (catalog, c)

(* ground truth: Ls' tuples of the full join, recomputed from scratch *)
let full_join_now catalog c =
  List.concat_map
    (fun rt ->
      List.filter_map
        (fun st ->
          if Value.equal rt.(1) st.(0) then
            Some (Template.result_of_joined c (Tuple.concat rt st))
          else None)
        (Heap_file.fold (Catalog.heap catalog "s") (fun a _ t -> t :: a) []))
    (Heap_file.fold (Catalog.heap catalog "r") (fun a _ t -> t :: a) [])

let test_create_populates () =
  let catalog, c = setup () in
  let mv = Matview.create catalog ~name:"eqt" c in
  check Alcotest.bool "contents = full join" true
    (Helpers.same_multiset (Matview.contents mv) (full_join_now catalog c));
  check Alcotest.bool "nonempty" true (Matview.cardinality mv > 0)

let test_immediate_maintenance () =
  let catalog, c = setup () in
  let mv = Matview.create catalog ~name:"eqt" c in
  let mgr = Txn.create catalog in
  Matview.attach mv mgr;
  (* inserts into both relations *)
  ignore
    (Txn.run mgr
       [
         Txn.Insert { rel = "r"; tuple = [| vi 700; vi 5; vi 3; Value.Str "n" |] };
         Txn.Insert { rel = "s"; tuple = [| vi 5; vi 2; vi 777 |] };
       ]);
  check Alcotest.bool "after inserts" true
    (Helpers.same_multiset (Matview.contents mv) (full_join_now catalog c));
  (* deletes *)
  ignore (Txn.run mgr [ Txn.Delete { rel = "r"; pred = Predicate.Cmp (Predicate.Eq, 1, vi 5) } ]);
  check Alcotest.bool "after delete" true
    (Helpers.same_multiset (Matview.contents mv) (full_join_now catalog c));
  (* updates that move join keys *)
  ignore
    (Txn.run mgr
       [
         Txn.Update
           { rel = "s"; pred = Predicate.Cmp (Predicate.Eq, 0, vi 7); set = [ (0, vi 8) ] };
       ]);
  check Alcotest.bool "after update" true
    (Helpers.same_multiset (Matview.contents mv) (full_join_now catalog c))

let test_mv_answers_queries () =
  let catalog, c = setup () in
  let mv = Matview.create catalog ~name:"eqt" c in
  let inst = Instance.make c [| Instance.Dvalues [ vi 1; vi 2 ]; Instance.Dvalues [ vi 3 ] |] in
  check Alcotest.bool "MV answer = brute force" true
    (Helpers.same_multiset (Matview.answer mv inst) (Helpers.brute_force_answer catalog inst))

let prop_maintenance_random_ops =
  QCheck2.Test.make ~name:"MV stays consistent under random transactions" ~count:25
    QCheck2.Gen.(list_size (int_range 1 12) (triple (int_range 0 2) bool (int_range 0 30)))
    (fun ops ->
      let catalog, c = setup () in
      let mv = Matview.create catalog ~name:"eqt" c in
      let mgr = Txn.create catalog in
      Matview.attach mv mgr;
      let fresh = ref 1000 in
      List.iter
        (fun (op, on_r, k) ->
          incr fresh;
          let change =
            match op with
            | 0 ->
                if on_r then
                  Txn.Insert
                    { rel = "r"; tuple = [| vi !fresh; vi (k mod 20); vi (k mod 10); Value.Str "x" |] }
                else Txn.Insert { rel = "s"; tuple = [| vi (k mod 20); vi (k mod 8); vi !fresh |] }
            | 1 ->
                let rel = if on_r then "r" else "s" in
                let pos = if on_r then 1 else 0 in
                Txn.Delete { rel; pred = Predicate.Cmp (Predicate.Eq, pos, vi (k mod 20)) }
            | _ ->
                if on_r then
                  Txn.Update
                    {
                      rel = "r";
                      pred = Predicate.Cmp (Predicate.Eq, 2, vi (k mod 10));
                      set = [ (1, vi ((k + 3) mod 20)) ];
                    }
                else
                  Txn.Update
                    {
                      rel = "s";
                      pred = Predicate.Cmp (Predicate.Eq, 1, vi (k mod 8));
                      set = [ (0, vi ((k + 5) mod 20)) ];
                    }
          in
          ignore (Txn.run mgr [ change ]))
        ops;
      Helpers.same_multiset (Matview.contents mv) (full_join_now catalog c))

(* --- analytical model (Figures 11-12) --- *)

let p_grid = List.init 11 (fun i -> float_of_int i /. 10.0)

let test_model_shape () =
  let m = Mv_cost.default in
  (* both maintenance costs decrease with the insert fraction p *)
  let mv = List.map (fun p -> Mv_cost.tw_mv m ~p) p_grid in
  let pmv = List.map (fun p -> Mv_cost.tw_pmv m ~p) p_grid in
  let decreasing xs = List.for_all2 (fun a b -> a >= b -. 1e-9) xs (List.tl xs @ [ List.nth xs 10 ]) in
  check Alcotest.bool "MV cost decreasing in p" true (decreasing mv);
  check Alcotest.bool "PMV cost decreasing in p" true (decreasing pmv);
  (* the paper: at least two orders of magnitude cheaper everywhere *)
  check Alcotest.bool ">= 100x cheaper" true (Mv_cost.min_speedup m >= 100.0);
  (* speedup grows with p (Figure 12) *)
  let sp = List.map (fun p -> Mv_cost.speedup m ~p) p_grid in
  check Alcotest.bool "speedup increasing" true
    (List.for_all2 (fun a b -> a <= b +. 1e-9) (List.filteri (fun i _ -> i < 10) sp) (List.tl sp))

let test_model_idealized () =
  let m = Mv_cost.default in
  check (Alcotest.float 1e-9) "idealized PMV cost is 0 at p=1" 0.0
    (Mv_cost.tw_pmv ~idealized:true m ~p:1.0);
  check Alcotest.bool "figure PMV cost small but nonzero at p=1" true
    (Mv_cost.tw_pmv m ~p:1.0 > 0.0);
  Alcotest.check_raises "p out of range" (Invalid_argument "Mv_cost: p must be within [0, 1]")
    (fun () -> ignore (Mv_cost.tw_mv m ~p:1.5))

let test_model_magnitudes () =
  (* sanity against the published figure: MV maintenance of |ΔR| = 1000
     sits in the thousands of I/Os, PMV in the tens *)
  let m = Mv_cost.default in
  check Alcotest.bool "MV magnitude" true
    (Mv_cost.tw_mv m ~p:0.0 > 1000.0 && Mv_cost.tw_mv m ~p:0.0 < 100_000.0);
  check Alcotest.bool "PMV magnitude" true
    (Mv_cost.tw_pmv m ~p:0.0 < 100.0)

let suite =
  [
    Alcotest.test_case "create populates" `Quick test_create_populates;
    Alcotest.test_case "immediate maintenance" `Quick test_immediate_maintenance;
    Alcotest.test_case "MV answers queries" `Quick test_mv_answers_queries;
    QCheck_alcotest.to_alcotest prop_maintenance_random_ops;
    Alcotest.test_case "cost model shape" `Quick test_model_shape;
    Alcotest.test_case "cost model idealized" `Quick test_model_idealized;
    Alcotest.test_case "cost model magnitudes" `Quick test_model_magnitudes;
  ]
