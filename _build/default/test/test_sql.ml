open Minirel_storage
open Minirel_query
module Lexer = Minirel_sql.Lexer
module Parser = Minirel_sql.Parser
module Ast = Minirel_sql.Ast
module Binder = Minirel_sql.Binder
module Session = Minirel_sql.Session

let check = Alcotest.check
let vi i = Value.Int i

(* --- lexer --- *)

let test_lexer_basics () =
  let toks = Lexer.tokenize "SELECT r.a FROM r WHERE (r.f = 1)" in
  check Alcotest.int "token count" 15 (List.length toks);
  check Alcotest.bool "keywords case-insensitive" true
    (Lexer.tokenize "select" = Lexer.tokenize "SeLeCt");
  check Alcotest.bool "string escape" true
    (List.mem (Lexer.STRING "it's") (Lexer.tokenize "'it''s'"));
  check Alcotest.bool "negative int" true (List.mem (Lexer.INT (-5)) (Lexer.tokenize "-5"));
  check Alcotest.bool "float" true (List.mem (Lexer.FLOAT 2.5) (Lexer.tokenize "2.5"));
  check Alcotest.bool "two-char ops" true
    (List.mem Lexer.GE (Lexer.tokenize ">=") && List.mem Lexer.NE (Lexer.tokenize "<>"));
  match Lexer.tokenize "@" with
  | _ -> Alcotest.fail "bad character accepted"
  | exception Lexer.Error _ -> ()

(* --- parser --- *)

let test_parser_shapes () =
  let q =
    Parser.parse
      "select r.rkey, s.e from r, s where r.c = s.d and r.rkey > 5 and (r.f = 1 or r.f = \
       3) and (s.g in (2, 4))"
  in
  check Alcotest.int "select items" 2 (List.length q.Ast.select);
  check Alcotest.int "from items" 2 (List.length q.Ast.from);
  check Alcotest.int "where items" 4 (List.length q.Ast.where);
  let groups = List.filter (function Ast.W_group _ -> true | _ -> false) q.Ast.where in
  check Alcotest.int "two selection groups" 2 (List.length groups);
  (* star and aliases *)
  let q2 = Parser.parse "select * from r x, s y where x.c = y.d and (x.f = 1)" in
  check Alcotest.bool "star" true (List.mem Ast.S_star q2.Ast.select);
  check Alcotest.bool "alias" true (List.mem ("r", Some "x") q2.Ast.from);
  (* between *)
  let q3 = Parser.parse "select r.rkey from r where (r.f between 1 and 3)" in
  (match q3.Ast.where with
  | [ Ast.W_group [ Ast.A_between (_, Ast.L_int 1, Ast.L_int 3) ] ] -> ()
  | _ -> Alcotest.fail "between shape");
  match Parser.parse "select from r where (r.f = 1)" with
  | _ -> Alcotest.fail "bad query accepted"
  | exception Parser.Error _ -> ()

(* --- binder + end-to-end --- *)

let setup () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  ignore (Minirel_index.Catalog.create_index catalog ~rel:"s" ~name:"s_e" ~attrs:[ "e" ] ());
  (catalog, Session.create catalog)

let sql_answer catalog compiled inst =
  ignore compiled;
  Helpers.brute_force_answer catalog inst

let test_bind_equality_template () =
  let catalog, session = setup () in
  let compiled, inst =
    Session.query session
      "select r.rkey, s.e from r, s where r.c = s.d and (r.f = 1 or r.f = 3) and (s.g = 2)"
  in
  let spec = compiled.Template.spec in
  check Alcotest.int "two relations" 2 (Array.length spec.Template.relations);
  check Alcotest.int "one join" 1 (List.length spec.Template.joins);
  check Alcotest.int "two selections" 2 (Array.length spec.Template.selections);
  (* answers equal ground truth through the full PMV pipeline *)
  let view = Pmv.View.create ~capacity:20 ~f_max:2 ~name:"sqlv" compiled in
  let out = ref [] in
  let _ = Pmv.Answer.answer ~view catalog inst ~on_tuple:(fun _ t -> out := t :: !out) in
  check Alcotest.bool "sql answer correct" true
    (Helpers.same_multiset !out (sql_answer catalog compiled inst))

let test_template_sharing () =
  let _, session = setup () in
  let c1, i1 =
    Session.query session "select r.rkey from r, s where r.c = s.d and (r.f = 1) and (s.g = 2)"
  in
  let c2, i2 =
    Session.query session "select r.rkey from r, s where r.c = s.d and (r.f = 7) and (s.g = 5)"
  in
  check Alcotest.bool "same compiled template" true (c1 == c2);
  check Alcotest.int "one template cached" 1 (Session.n_templates session);
  check Alcotest.bool "different parameters" true
    (Instance.params i1 <> Instance.params i2);
  (* a different structure is a different template *)
  let c3, _ =
    Session.query session "select s.e from r, s where r.c = s.d and (r.f = 1) and (s.g = 2)"
  in
  check Alcotest.bool "different select list differs" true (c1 != c3);
  check Alcotest.int "two templates" 2 (Session.n_templates session)

let test_interval_template_with_grid () =
  let catalog, session = setup () in
  Session.set_grid session ~rel:"s" ~attr:"e"
    (Discretize.of_cuts (List.init 12 (fun i -> vi (i * 10))));
  let compiled, inst =
    Session.query session
      "select r.rkey, s.e from r, s where r.c = s.d and (r.f = 1) and (s.e between 15 and 42)"
  in
  (match compiled.Template.spec.Template.selections.(1) with
  | Template.Range_sel (_, grid) ->
      check Alcotest.bool "grid applied" true (Discretize.n_intervals grid > 1)
  | Template.Eq_sel _ -> Alcotest.fail "expected interval form");
  check Alcotest.bool "h > 1 thanks to the grid" true
    (Condition_part.combination_factor inst > 1);
  let view = Pmv.View.create ~capacity:30 ~f_max:3 ~name:"sqliv" compiled in
  let out = ref [] in
  let _ = Pmv.Answer.answer ~view catalog inst ~on_tuple:(fun _ t -> out := t :: !out) in
  check Alcotest.bool "interval sql correct" true
    (Helpers.same_multiset !out (Helpers.brute_force_answer catalog inst))

let test_grid_from_data () =
  let _, session = setup () in
  Session.set_grid_from_data session ~rel:"s" ~attr:"e" ~bins:8;
  let compiled, _ =
    Session.query session
      "select r.rkey from r, s where r.c = s.d and (r.f = 1) and (s.e between 1 and 60)"
  in
  match compiled.Template.spec.Template.selections.(1) with
  | Template.Range_sel (_, grid) ->
      check Alcotest.bool "equi-depth grid has cuts" true (Discretize.n_intervals grid >= 4)
  | Template.Eq_sel _ -> Alcotest.fail "expected interval form"

let test_fixed_and_in () =
  let catalog, session = setup () in
  let compiled, inst =
    Session.query session
      "select r.rkey from r, s where r.c = s.d and r.rkey <= 100 and s.e in (1, 2, 3, 4) \
       and (r.f = 1 or r.f = 2)"
  in
  check Alcotest.int "two fixed predicates" 2
    (List.length compiled.Template.spec.Template.fixed);
  let out = ref [] in
  let _ = Pmv.Answer.answer_plain catalog inst ~on_tuple:(fun _ t -> out := t :: !out) in
  check Alcotest.bool "fixed predicates honoured" true
    (Helpers.same_multiset !out (Helpers.brute_force_answer catalog inst));
  (* IN-sugar inside a group is an equality-form condition *)
  let compiled2, inst2 =
    Session.query session
      "select r.rkey from r, s where r.c = s.d and (r.f in (1, 2)) and (s.g = 3)"
  in
  (match compiled2.Template.spec.Template.selections.(0) with
  | Template.Eq_sel _ -> ()
  | Template.Range_sel _ -> Alcotest.fail "IN should bind as equality form");
  check Alcotest.int "h = 2 * 1" 2 (Condition_part.combination_factor inst2)

let test_type_coercion () =
  let catalog = Helpers.fresh_catalog () in
  let sch =
    Schema.create "m" [ ("k", Schema.Tint); ("price", Schema.Tfloat); ("tag", Schema.Tstr) ]
  in
  let _ = Minirel_index.Catalog.create_relation catalog sch in
  for i = 1 to 20 do
    ignore
      (Minirel_index.Catalog.insert catalog ~rel:"m"
         [| vi i; Value.Float (float_of_int (i * 10)); Value.Str (Fmt.str "t%d" (i mod 3)) |])
  done;
  ignore (Minirel_index.Catalog.create_index catalog ~rel:"m" ~name:"m_k" ~attrs:[ "k" ] ());
  let session = Session.create catalog in
  (* integer literals against the float column are coerced *)
  let _, inst =
    Session.query session "select m.k from m where (m.price between 50 and 100) and (m.k = 7)"
  in
  let out = ref [] in
  let _ = Pmv.Answer.answer_plain catalog inst ~on_tuple:(fun _ t -> out := t :: !out) in
  check Alcotest.int "coerced between matches" 1 (List.length !out);
  (* string literals work on string columns *)
  let _, inst2 = Session.query session "select m.k from m where (m.tag = 't1')" in
  let n = ref 0 in
  let _ = Pmv.Answer.answer_plain catalog inst2 ~on_tuple:(fun _ _ -> incr n) in
  check Alcotest.bool "string selection" true (!n > 0);
  (* a string literal against an int column is a bind error *)
  match Session.query session "select m.k from m where (m.k = 'oops')" with
  | _ -> Alcotest.fail "type mismatch accepted"
  | exception Binder.Error _ -> ()

let test_bind_errors () =
  let _, session = setup () in
  let expect_error sql =
    match Session.query session sql with
    | _ -> Alcotest.failf "accepted: %s" sql
    | exception (Binder.Error _ | Invalid_argument _) -> ()
  in
  expect_error "select r.rkey from zzz where (zzz.f = 1)";
  expect_error "select r.nope from r where (r.f = 1)";
  expect_error "select r.rkey from r where r.f = 1";  (* no selection group *)
  expect_error "select r.rkey from r, s where r.c = s.d and (r.f = 1 or s.g = 2)";
  (* mixed eq and range in one group *)
  expect_error
    "select r.rkey from r, s where r.c = s.d and (r.f = 1 or r.f between 2 and 3)";
  (* duplicate alias *)
  expect_error "select x.rkey from r x, s x where x.c = x.d and (x.f = 1)"

let test_print_roundtrip_basic () =
  let _, session = setup () in
  let sql = "select r.rkey, s.e from r, s where r.c = s.d and r.rkey <= 100 and (r.f = 1 or r.f = 3) and (s.g in (2, 4))" in
  let _, inst = Session.query session sql in
  let printed = Minirel_sql.Print.to_sql inst in
  let _, inst2 = Session.query session printed in
  check Alcotest.bool "round trip preserves parameters" true
    (Instance.params inst = Instance.params inst2)

let prop_print_roundtrip =
  (* random instances over the Eqt template with an interval condition:
     print -> parse -> bind -> identical answers *)
  QCheck2.Test.make ~name:"SQL print/parse round trip preserves answers" ~count:40
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 3) (int_range 0 9))
        (pair (int_range 0 100) (int_range 1 30))
        (int_range 0 2))
    (fun (fs, (lo, len), shape) ->
      let catalog = Helpers.fresh_catalog () in
      Helpers.build_rs catalog;
      ignore
        (Minirel_index.Catalog.create_index catalog ~rel:"s" ~name:"s_e" ~attrs:[ "e" ] ());
      let session = Session.create catalog in
      let grid = Discretize.of_cuts (List.init 6 (fun i -> vi (i * 20))) in
      Session.set_grid session ~rel:"s" ~attr:"e" grid;
      let compiled =
        Template.compile catalog
          { (Helpers.eqt_interval_spec ~grid) with Template.name = "rt" }
      in
      let interval =
        match shape with
        | 0 -> Interval.closed ~lo:(vi lo) ~hi:(vi (lo + len))
        | 1 -> Interval.at_least (vi lo)
        | _ -> Interval.below (vi (lo + len))
      in
      let inst =
        Instance.make compiled
          [|
            Instance.Dvalues (List.map (fun v -> vi v) (List.sort_uniq Int.compare fs));
            Instance.Dintervals [ interval ];
          |]
      in
      let printed = Minirel_sql.Print.to_sql inst in
      let _, inst2 = Session.query session printed in
      Helpers.same_multiset
        (Helpers.brute_force_answer catalog inst)
        (Helpers.brute_force_answer catalog inst2))

let test_sql_through_manager () =
  let catalog, session = setup () in
  let m = Pmv.Manager.create catalog in
  let run sql =
    let compiled, inst = Session.query session sql in
    if Pmv.Manager.find m ~template:compiled.Template.spec.Template.name = None then
      ignore (Pmv.Manager.create_view ~capacity:30 ~f_max:2 m compiled);
    let out = ref [] in
    let stats, used = Pmv.Manager.answer m inst ~on_tuple:(fun _ t -> out := t :: !out) in
    check Alcotest.bool "manager routed sql query" true used;
    check Alcotest.bool "correct" true
      (Helpers.same_multiset !out (Helpers.brute_force_answer catalog inst));
    stats
  in
  let _ = run "select r.rkey from r, s where r.c = s.d and (r.f = 1) and (s.g = 1)" in
  (* same template, same hot constants: the repeat hits the view *)
  let st = run "select r.rkey from r, s where r.c = s.d and (r.f = 1) and (s.g = 1)" in
  check Alcotest.bool "second identical query served partials" true
    (st.Pmv.Answer.partial_count > 0)

let suite =
  [
    Alcotest.test_case "lexer" `Quick test_lexer_basics;
    Alcotest.test_case "parser" `Quick test_parser_shapes;
    Alcotest.test_case "bind equality template" `Quick test_bind_equality_template;
    Alcotest.test_case "template sharing" `Quick test_template_sharing;
    Alcotest.test_case "interval template with grid" `Quick test_interval_template_with_grid;
    Alcotest.test_case "grid from data" `Quick test_grid_from_data;
    Alcotest.test_case "fixed predicates and IN" `Quick test_fixed_and_in;
    Alcotest.test_case "type coercion" `Quick test_type_coercion;
    Alcotest.test_case "bind errors" `Quick test_bind_errors;
    Alcotest.test_case "sql through manager" `Quick test_sql_through_manager;
    Alcotest.test_case "print roundtrip basic" `Quick test_print_roundtrip_basic;
    QCheck_alcotest.to_alcotest prop_print_roundtrip;
  ]
