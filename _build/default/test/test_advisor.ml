open Minirel_storage
open Minirel_query
module Advisor = Pmv.Advisor
module Manager = Pmv.Manager

let check = Alcotest.check
let vi i = Value.Int i

let setup () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  ignore (Minirel_index.Catalog.create_index catalog ~rel:"s" ~name:"s_e" ~attrs:[ "e" ] ());
  let c_eqt = Template.compile catalog Helpers.eqt_spec in
  let grid = Discretize.of_cuts (List.init 11 (fun i -> vi (i * 10))) in
  let c_iv = Template.compile catalog (Helpers.eqt_interval_spec ~grid) in
  (catalog, c_eqt, c_iv)

let eqt_query c_eqt f g =
  Instance.make c_eqt [| Instance.Dvalues [ vi f ]; Instance.Dvalues [ vi g ] |]

let feed advisor catalog c_eqt c_iv ~hot_queries ~cold_queries =
  (* hot template: many queries concentrated on few bcps *)
  for i = 1 to hot_queries do
    let inst = eqt_query c_eqt (i mod 3) (i mod 2) in
    let sample = Helpers.brute_force_answer catalog inst in
    Advisor.observe ~result_sample:sample advisor inst
  done;
  (* cold template: few queries, spread out *)
  for i = 1 to cold_queries do
    let inst =
      Instance.make c_iv
        [|
          Instance.Dvalues [ vi (i mod 10) ];
          Instance.Dintervals [ Interval.half_open ~lo:(vi (i * 7 mod 100)) ~hi:(vi ((i * 7 mod 100) + 5)) ];
        |]
    in
    Advisor.observe advisor inst
  done

let test_observe_and_rank () =
  let catalog, c_eqt, c_iv = setup () in
  let advisor = Advisor.create () in
  feed advisor catalog c_eqt c_iv ~hot_queries:40 ~cold_queries:8;
  check Alcotest.int "observed" 48 (Advisor.n_observed advisor);
  check Alcotest.int "two templates" 2 (Advisor.n_templates advisor);
  let recs = Advisor.recommend advisor ~budget_bytes:1_000_000 in
  check Alcotest.int "both recommended" 2 (List.length recs);
  (match recs with
  | top :: second :: _ ->
      check Alcotest.string "hot template first" "eqt"
        top.Advisor.template.Template.spec.Template.name;
      check Alcotest.bool "budget follows traffic" true
        (top.Advisor.suggested_ub > second.Advisor.suggested_ub);
      (* the hot template's trace is concentrated on 6 bcps *)
      check Alcotest.bool "high trace-hit estimate" true
        (top.Advisor.trace_hit_estimate > 0.9);
      check Alcotest.bool "F within bounds" true
        (top.Advisor.suggested_f >= 1 && top.Advisor.suggested_f <= 4)
  | _ -> Alcotest.fail "recs");
  (* min_queries filter *)
  let strict = Advisor.recommend advisor ~min_queries:20 ~budget_bytes:1_000_000 in
  check Alcotest.int "cold template filtered" 1 (List.length strict)

let test_apply_to_manager () =
  let catalog, c_eqt, c_iv = setup () in
  let advisor = Advisor.create () in
  feed advisor catalog c_eqt c_iv ~hot_queries:30 ~cold_queries:5;
  let manager = Manager.create catalog in
  let recs = Advisor.recommend advisor ~budget_bytes:500_000 in
  let created = Advisor.apply advisor manager recs in
  check Alcotest.int "views created" 2 created;
  check Alcotest.bool "eqt view exists" true (Manager.find manager ~template:"eqt" <> None);
  (* applying again creates nothing new *)
  check Alcotest.int "idempotent" 0 (Advisor.apply advisor manager recs);
  (* the advised views actually serve the hot workload *)
  let inst = eqt_query c_eqt 1 1 in
  ignore (Manager.answer manager inst ~on_tuple:(fun _ _ -> ()));
  let stats, used = Manager.answer manager inst ~on_tuple:(fun _ _ -> ()) in
  check Alcotest.bool "routed" true used;
  check Alcotest.bool "hot query served" true (stats.Pmv.Answer.partial_count > 0)

let test_empty_and_errors () =
  let advisor = Advisor.create () in
  check (Alcotest.list Alcotest.bool) "no trace, no recs" []
    (List.map (fun _ -> true) (Advisor.recommend advisor ~budget_bytes:1_000));
  match Advisor.recommend advisor ~budget_bytes:0 with
  | _ -> Alcotest.fail "zero budget accepted"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "observe and rank" `Quick test_observe_and_rank;
    Alcotest.test_case "apply to manager" `Quick test_apply_to_manager;
    Alcotest.test_case "empty and errors" `Quick test_empty_and_errors;
  ]
