(* Shared catalog constructor for the examples. *)
let fresh ?(pool_pages = 4_000) () =
  Minirel_index.Catalog.create (Minirel_storage.Buffer_pool.create ~capacity:pool_pages ())
