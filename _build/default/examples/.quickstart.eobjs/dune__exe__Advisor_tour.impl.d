examples/advisor_tour.ml: Fmt Helpers_catalog List Minirel_shell Minirel_workload Pmv
