examples/call_center.mli:
