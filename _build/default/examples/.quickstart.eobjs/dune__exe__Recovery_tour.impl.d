examples/recovery_tour.ml: Buffer_pool Filename Fmt Heap_file List Minirel_index Minirel_query Minirel_storage Minirel_txn Minirel_workload Pmv Schema Sys Unix Value
