examples/sql_workbench.ml: Buffer_pool Fmt Int64 Minirel_index Minirel_query Minirel_sql Minirel_storage Minirel_txn Minirel_workload Pmv
