examples/advisor_tour.mli:
