examples/call_center.ml: Buffer_pool Discretize Fmt Instance Interval List Minirel_index Minirel_query Minirel_storage Minirel_txn Minirel_workload Pmv Predicate Schema Template Value
