examples/quickstart.ml: Buffer_pool Fmt Instance Int64 Minirel_index Minirel_query Minirel_storage Minirel_workload Pmv Schema Template Tuple Value
