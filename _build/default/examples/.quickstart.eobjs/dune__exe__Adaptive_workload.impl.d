examples/adaptive_workload.ml: Buffer_pool Fmt Instance List Minirel_cache Minirel_index Minirel_query Minirel_storage Minirel_workload Pmv Schema Template Value
