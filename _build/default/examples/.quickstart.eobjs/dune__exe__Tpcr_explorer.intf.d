examples/tpcr_explorer.mli:
