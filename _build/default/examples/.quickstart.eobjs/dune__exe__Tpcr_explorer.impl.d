examples/tpcr_explorer.ml: Buffer_pool Fmt Fun Int64 List Minirel_index Minirel_query Minirel_storage Minirel_txn Minirel_workload Pmv Value
