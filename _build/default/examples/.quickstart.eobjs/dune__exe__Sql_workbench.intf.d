examples/sql_workbench.mli:
