examples/adaptive_workload.mli:
