examples/recovery_tour.mli:
