examples/quickstart.mli:
