(* Table printing for the experiment harness. *)

let rule () = Fmt.pr "%s@." (String.make 78 '-')

let header ~id ~title ~paper =
  Fmt.pr "@.";
  rule ();
  Fmt.pr "%s — %s@." id title;
  Fmt.pr "paper shape: %s@." paper;
  rule ()

let row fmt = Fmt.pr fmt

let sec_of_ns ns = Int64.to_float ns /. 1e9

let pp_opt_ns ppf = function
  | None -> Fmt.string ppf "-"
  | Some ns -> Fmt.pf ppf "%.6f" (sec_of_ns ns)
