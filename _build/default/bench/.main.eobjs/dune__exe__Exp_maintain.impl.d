bench/exp_maintain.ml: Buffer_pool Float Fmt Int64 Io_stats List Minirel_index Minirel_matview Minirel_query Minirel_storage Minirel_txn Minirel_workload Monotonic_clock Output Pmv Value
