bench/exp_overhead.ml: Array Buffer_pool Float Fmt List Minirel_index Minirel_query Minirel_storage Minirel_workload Output Pmv Value
