bench/main.ml: Arg Cmd Cmdliner Exp_maintain Exp_micro Exp_overhead Exp_sim Fmt List Term
