bench/main.mli:
