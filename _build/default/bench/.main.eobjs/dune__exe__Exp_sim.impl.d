bench/exp_sim.ml: Fmt List Minirel_cache Output Pmv Pmv_sim
