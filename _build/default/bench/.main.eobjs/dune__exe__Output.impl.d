bench/output.ml: Fmt Int64 String
