(* Figures 6 and 7 (hit-probability simulation, Section 4.1) and the
   policy ablation (extra B). *)

module Hitprob = Pmv_sim.Hitprob
module Policies = Minirel_cache.Policies

type config = { full : bool; seed : int }

let base_cfg { full; seed } =
  if full then { Hitprob.paper_default with seed } else { Hitprob.scaled_default with seed }

(* Figure 6: hit probability vs h (1..5), CLOCK vs 2Q, alpha in
   {1.07, 1.01}, N fixed (paper: 20K over a 1M-bcp universe). *)
let fig6 cfg =
  let base = base_cfg cfg in
  Output.header ~id:"Figure 6" ~title:"hit probability vs combination factor h"
    ~paper:
      "all curves rise toward 100% as h grows; higher alpha is higher; 2Q above CLOCK"
  ;
  Fmt.pr "universe=%d N=%d warmup=%d measure=%d@." base.Hitprob.universe base.Hitprob.n
    base.Hitprob.warmup base.Hitprob.measure;
  Output.row "%-6s %-24s %-24s@." "" "alpha=1.07" "alpha=1.01";
  Output.row "%-6s %-11s %-12s %-11s %-12s@." "h" "2Q" "CLOCK" "2Q" "CLOCK";
  let cell policy alpha h =
    (Hitprob.run { base with Hitprob.policy; alpha; h }).Hitprob.hit_prob
  in
  List.iter
    (fun h ->
      Output.row "%-6d %-11.4f %-12.4f %-11.4f %-12.4f@." h
        (cell Policies.Two_q 1.07 h)
        (cell Policies.Clock 1.07 h)
        (cell Policies.Two_q 1.01 h)
        (cell Policies.Clock 1.01 h))
    [ 1; 2; 3; 4; 5 ]

(* Figure 7: hit probability vs N (paper: 10K..30K), alpha=1.07, h=2. *)
let fig7 cfg =
  let base = base_cfg cfg in
  let scale_n = if cfg.full then 1 else 10 in
  Output.header ~id:"Figure 7" ~title:"hit probability vs PMV size N"
    ~paper:"both curves rise toward 100% as N grows; 2Q above CLOCK";
  Output.row "%-10s %-11s %-12s@." "N" "2Q" "CLOCK";
  List.iter
    (fun n_paper ->
      let n = n_paper / scale_n in
      let cell policy =
        (Hitprob.run { base with Hitprob.policy; n; alpha = 1.07; h = 2 }).Hitprob.hit_prob
      in
      Output.row "%-10d %-11.4f %-12.4f@." n
        (cell Policies.Two_q) (cell Policies.Clock))
    [ 10_000; 15_000; 20_000; 25_000; 30_000 ]

(* The Section 3.2 F tradeoff: "Given the storage limit UB of V_PM,
   this F makes a tradeoff between (a) the probability that V_PM can
   provide some partial results to Q, and (b) the number of partial
   result tuples that V_PM can provide". Under a fixed budget, raising
   F shrinks L = UB / (F * At * 1.04): hit probability falls while
   tuples-per-hit grows. *)
let ablation_f cfg =
  let base = base_cfg cfg in
  Output.header ~id:"Ablation F" ~title:"the F tradeoff under a fixed storage budget"
    ~paper:
      "(Section 3.2, qualitative) larger F: fewer entries -> lower hit probability but \
       more partial tuples per hit";
  let avg_tuple_bytes = 50 in
  let ub = Pmv.Sizing.footprint_bytes ~l:base.Hitprob.n ~f_max:2 ~avg_tuple_bytes in
  Output.row "%-4s %-10s %-12s %-16s %-18s@." "F" "entries L" "hit prob" "bcps hit/query"
    "partial tuples/query";
  List.iter
    (fun f ->
      let l =
        Pmv.Sizing.max_entries { Pmv.Sizing.ub_bytes = ub; f_max = f; avg_tuple_bytes }
      in
      let r = Hitprob.run { base with Hitprob.n = l; alpha = 1.07; h = 2 } in
      Output.row "%-4d %-10d %-12.4f %-16.3f %-18.2f@." f l r.Hitprob.hit_prob
        r.Hitprob.avg_hit_bcps
        (float_of_int f *. r.Hitprob.avg_hit_bcps))
    [ 1; 2; 3; 4; 5; 8 ]

(* Warm-up sensitivity: the paper "also tested other numbers of warm-up
   queries. The results were similar and thus omitted." *)
let sens_warmup cfg =
  let base = base_cfg cfg in
  Output.header ~id:"Sensitivity" ~title:"hit probability vs warm-up length (h=2, alpha=1.07)"
    ~paper:"stable once the PMV has filled: 'the results were similar and thus omitted'";
  Output.row "%-10s %-12s@." "warm-up" "hit prob";
  List.iter
    (fun frac ->
      let warmup = base.Hitprob.warmup * frac / 100 in
      let r = Hitprob.run { base with Hitprob.warmup; alpha = 1.07; h = 2 } in
      Output.row "%-10d %-12.4f@." warmup r.Hitprob.hit_prob)
    [ 25; 50; 100; 200 ]

(* Pattern drift: the query distribution's hot region shifts between
   windows; the PMV must re-learn it ("we continuously update the
   content in the PMV to adapt to the current query pattern"). *)
let ablation_drift cfg =
  let base = base_cfg cfg in
  (* a window is roughly the refill timescale of the PMV; the shift
     moves the whole hot region well past the cached set *)
  let every = max 1_000 base.Hitprob.n in
  let drift = 5 * base.Hitprob.n in
  Output.header ~id:"Ablation Drift"
    ~title:"hit probability per window while the hot region shifts (h=2, alpha=1.07)"
    ~paper:
      "(Section 3.2, qualitative) every policy dips right after a shift and recovers as \
       the PMV refills; recency-aware policies recover fastest";
  Output.row "the hot region jumps %d ranks once; windows of %d queries@." drift every;
  Output.row "%-8s %-10s | %s@." "policy" "baseline" "post-shift windows";
  List.iter
    (fun policy ->
      let baseline, windows =
        Hitprob.run_drift { base with Hitprob.policy; alpha = 1.07; h = 2 } ~drift ~every
          ~windows:6
      in
      Output.row "%-8s %-10.3f | %a@."
        (Policies.to_string policy)
        baseline
        Fmt.(list ~sep:(any " ") (fmt "%.3f"))
        windows)
    Policies.all

(* Extra B: the same simulation across all four policies. *)
let ablation_policy cfg =
  let base = base_cfg cfg in
  Output.header ~id:"Ablation B" ~title:"replacement policy comparison (h=2, alpha=1.07)"
    ~paper:"(extra, not in the paper) expected order: 2Q >= LRU ~ CLOCK > FIFO";
  Output.row "%-8s %-12s %-10s@." "policy" "hit prob" "resident";
  List.iter
    (fun policy ->
      let r = Hitprob.run { base with Hitprob.policy; alpha = 1.07; h = 2 } in
      Output.row "%-8s %-12.4f %-10d@."
        (Policies.to_string policy)
        r.Hitprob.hit_prob r.Hitprob.resident)
    Policies.all
