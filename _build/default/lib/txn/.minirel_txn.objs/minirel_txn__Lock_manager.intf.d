lib/txn/lock_manager.mli: Fmt
