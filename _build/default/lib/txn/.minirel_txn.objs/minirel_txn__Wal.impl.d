lib/txn/wal.ml: Array Fmt Fun Heap_file List Minirel_index Minirel_storage String Tuple Txn
