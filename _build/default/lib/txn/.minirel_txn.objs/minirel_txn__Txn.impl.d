lib/txn/txn.ml: Array Fun Heap_file List Lock_manager Minirel_index Minirel_query Minirel_storage Predicate String Tuple Value
