lib/txn/txn.mli: Lock_manager Minirel_index Minirel_query Minirel_storage Predicate Tuple Value
