lib/txn/wal.mli: Minirel_index Txn
