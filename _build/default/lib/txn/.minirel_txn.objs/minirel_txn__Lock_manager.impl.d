lib/txn/lock_manager.ml: Fmt Hashtbl List Option
