(* Intervals over [Value.t], open or closed, bounded or unbounded —
   exactly the generality Section 2.1 of the paper allows for the
   interval-form selection conditions. *)

open Minirel_storage

type lower = Neg_inf | L_incl of Value.t | L_excl of Value.t
type upper = Pos_inf | U_incl of Value.t | U_excl of Value.t

type t = { lo : lower; hi : upper }

let make lo hi = { lo; hi }
let full = { lo = Neg_inf; hi = Pos_inf }
let point v = { lo = L_incl v; hi = U_incl v }

(* Common constructors for half-open [lo, hi) intervals, the shape basic
   intervals take after discretisation. *)
let half_open ~lo ~hi = { lo = L_incl lo; hi = U_excl hi }
let at_least v = { lo = L_incl v; hi = Pos_inf }
let below v = { lo = Neg_inf; hi = U_excl v }
let open_ ~lo ~hi = { lo = L_excl lo; hi = U_excl hi }
let closed ~lo ~hi = { lo = L_incl lo; hi = U_incl hi }

(* Total order on lower bounds: smaller = admits more points below. *)
let compare_lower a b =
  match (a, b) with
  | Neg_inf, Neg_inf -> 0
  | Neg_inf, _ -> -1
  | _, Neg_inf -> 1
  | L_incl x, L_incl y | L_excl x, L_excl y -> Value.compare x y
  | L_incl x, L_excl y ->
      let c = Value.compare x y in
      if c <> 0 then c else -1  (* inclusive bound is lower *)
  | L_excl x, L_incl y ->
      let c = Value.compare x y in
      if c <> 0 then c else 1

(* Total order on upper bounds: larger = admits more points above. *)
let compare_upper a b =
  match (a, b) with
  | Pos_inf, Pos_inf -> 0
  | Pos_inf, _ -> 1
  | _, Pos_inf -> -1
  | U_incl x, U_incl y | U_excl x, U_excl y -> Value.compare x y
  | U_incl x, U_excl y ->
      let c = Value.compare x y in
      if c <> 0 then c else 1  (* inclusive bound is higher *)
  | U_excl x, U_incl y ->
      let c = Value.compare x y in
      if c <> 0 then c else -1

let above_lower lo v =
  match lo with
  | Neg_inf -> true
  | L_incl x -> Value.compare v x >= 0
  | L_excl x -> Value.compare v x > 0

let below_upper hi v =
  match hi with
  | Pos_inf -> true
  | U_incl x -> Value.compare v x <= 0
  | U_excl x -> Value.compare v x < 0

let contains t v = above_lower t.lo v && below_upper t.hi v

(* Empty iff no value can satisfy both bounds. Conservative for bound
   pairs like (x, x+1) over ints with both ends exclusive: such an
   interval is treated as non-empty even though no integer inhabits it;
   harmless, since [contains] is what all consumers use. *)
let is_empty t =
  match (t.lo, t.hi) with
  | Neg_inf, _ | _, Pos_inf -> false
  | L_incl x, U_incl y -> Value.compare x y > 0
  | L_incl x, U_excl y | L_excl x, U_incl y | L_excl x, U_excl y ->
      Value.compare x y >= 0

let max_lower a b = if compare_lower a b >= 0 then a else b
let min_upper a b = if compare_upper a b <= 0 then a else b

let intersect a b =
  let t = { lo = max_lower a.lo b.lo; hi = min_upper a.hi b.hi } in
  if is_empty t then None else Some t

let overlaps a b = intersect a b <> None

(* a subset-of b *)
let subset a b = compare_lower a.lo b.lo >= 0 && compare_upper a.hi b.hi <= 0

let equal a b = compare_lower a.lo b.lo = 0 && compare_upper a.hi b.hi = 0

let pp ppf t =
  (match t.lo with
  | Neg_inf -> Fmt.string ppf "(-inf"
  | L_incl v -> Fmt.pf ppf "[%a" Value.pp v
  | L_excl v -> Fmt.pf ppf "(%a" Value.pp v);
  Fmt.string ppf ", ";
  match t.hi with
  | Pos_inf -> Fmt.string ppf "+inf)"
  | U_incl v -> Fmt.pf ppf "%a]" Value.pp v
  | U_excl v -> Fmt.pf ppf "%a)" Value.pp v

let to_string t = Fmt.str "%a" pp t

(* The paper requires the intervals inside one interval-form Ci to be
   disjoint; generators and tests use this to validate inputs. *)
let pairwise_disjoint ts =
  let rec go = function
    | [] -> true
    | x :: rest -> List.for_all (fun y -> not (overlaps x y)) rest && go rest
  in
  go ts
