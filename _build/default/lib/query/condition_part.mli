(** Operation O1 (Section 3.3): break a query's Cselect into
    non-overlapping condition parts, each tagged with its containing
    basic condition part. Equality atoms are always exact; an interval
    atom is exact iff the query covers its whole basic interval. *)

open Minirel_storage

type atom =
  | A_eq of Value.t
  | A_range of { id : int; piece : Interval.t; exact : bool }

type t = { bcp : Bcp.t; exact : bool; atoms : atom array }

val bcp : t -> Bcp.t

(** Whether the condition part equals its containing bcp. *)
val is_exact : t -> bool

(** All condition parts of a query: the cross product of the per-Ci
    atoms. Pairwise non-overlapping by construction. *)
val decompose : Instance.t -> t list

(** The paper's combination factor h = number of condition parts. *)
val combination_factor : Instance.t -> int

(** Membership of an Ls' result tuple in this condition part. For
    tuples already known to belong to the part's bcp (they came out of
    that bcp's PMV entry), test {!is_exact} first and skip the check. *)
val check : Template.compiled -> t -> Tuple.t -> bool

(** The containing bcp of a result tuple: selection attributes read
    from the Ls' tuple, interval attributes mapped to basic-interval
    ids. Operation O3 uses it to place freshly computed tuples;
    deferred maintenance uses it to locate victims. *)
val bcp_of_result : Template.compiled -> Tuple.t -> Bcp.t

val pp : t Fmt.t
