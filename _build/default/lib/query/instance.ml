(* A query: a compiled template plus one disjunct list per selection
   condition Ci. Different queries from one template may have different
   numbers of disjuncts (the paper's u_i). *)

open Minirel_storage

type disjuncts =
  | Dvalues of Value.t list  (* equality form: v_{i,1} or ... or v_{i,u} *)
  | Dintervals of Interval.t list  (* interval form: disjoint intervals *)

type t = { compiled : Template.compiled; params : disjuncts array }

(* @raise Invalid_argument when the parameter shapes do not match the
   template: wrong arity, an equality Ci given intervals (or vice
   versa), empty or duplicated values, overlapping intervals. *)
let make compiled params =
  let sels = compiled.Template.spec.Template.selections in
  if Array.length params <> Array.length sels then
    invalid_arg "Instance.make: wrong number of parameter groups";
  Array.iteri
    (fun i d ->
      match (sels.(i), d) with
      | Template.Eq_sel _, Dvalues [] -> invalid_arg "Instance.make: empty value list"
      | Template.Eq_sel _, Dvalues vs ->
          let sorted = List.sort_uniq Value.compare vs in
          if List.length sorted <> List.length vs then
            invalid_arg "Instance.make: duplicate values in an equality condition"
      | Template.Range_sel _, Dintervals [] ->
          invalid_arg "Instance.make: empty interval list"
      | Template.Range_sel _, Dintervals ivs ->
          if List.exists Interval.is_empty ivs then
            invalid_arg "Instance.make: empty interval";
          if not (Interval.pairwise_disjoint ivs) then
            invalid_arg "Instance.make: intervals of one condition must be disjoint"
      | Template.Eq_sel _, Dintervals _ | Template.Range_sel _, Dvalues _ ->
          invalid_arg (Fmt.str "Instance.make: parameter %d has the wrong form" i))
    params;
  { compiled; params }

let compiled t = t.compiled
let params t = t.params

(* Ci as a predicate over a tuple where the attribute of Ci sits at
   position [pos]. *)
let condition_pred pos = function
  | Dvalues vs -> Predicate.In_set (pos, vs)
  | Dintervals ivs -> Predicate.Or (List.map (fun iv -> Predicate.In_interval (pos, iv)) ivs)

(* Cselect over an Ls' result tuple. *)
let cselect_pred_result t =
  Predicate.conj
    (Array.to_list
       (Array.mapi (fun i d -> condition_pred t.compiled.Template.sel_pos.(i) d) t.params))

(* Cselect over a joined tuple. *)
let cselect_pred_joined t =
  let sels = t.compiled.Template.spec.Template.selections in
  Predicate.conj
    (Array.to_list
       (Array.mapi
          (fun i d ->
            let pos = Template.joined_pos t.compiled (Template.selection_attr sels.(i)) in
            condition_pred pos d)
          t.params))

(* A result tuple satisfies the query iff it satisfies Cselect (all PMV
   tuples and all executor outputs already satisfy Cjoin). *)
let accepts_result t result = Predicate.eval (cselect_pred_result t) result
