(** A query: a compiled template plus one disjunct list per selection
    condition Ci. Different queries from one template may have
    different numbers of disjuncts (the paper's u_i). *)

open Minirel_storage

type disjuncts =
  | Dvalues of Value.t list  (** equality form: v1 or v2 or ... *)
  | Dintervals of Interval.t list  (** interval form: disjoint intervals *)

type t

(** @raise Invalid_argument when the parameter shapes do not match the
    template: wrong arity, wrong form for a condition, empty or
    duplicate values, empty or overlapping intervals. *)
val make : Template.compiled -> disjuncts array -> t

val compiled : t -> Template.compiled
val params : t -> disjuncts array

(** Ci as a predicate over a tuple whose Ci-attribute sits at [pos]. *)
val condition_pred : int -> disjuncts -> Predicate.t

(** Cselect over an Ls' result tuple. *)
val cselect_pred_result : t -> Predicate.t

(** Cselect over a joined tuple. *)
val cselect_pred_joined : t -> Predicate.t

(** Whether an Ls' result tuple satisfies the query (every PMV tuple
    and executor output already satisfies Cjoin). *)
val accepts_result : t -> Tuple.t -> bool
