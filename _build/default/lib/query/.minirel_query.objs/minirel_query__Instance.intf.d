lib/query/instance.mli: Interval Minirel_storage Predicate Template Tuple Value
