lib/query/bcp.mli: Fmt Hashtbl Minirel_storage Tuple
