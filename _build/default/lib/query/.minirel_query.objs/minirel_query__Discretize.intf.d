lib/query/discretize.mli: Fmt Interval Minirel_storage Value
