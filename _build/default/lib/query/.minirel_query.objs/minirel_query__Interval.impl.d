lib/query/interval.ml: Fmt List Minirel_storage Value
