lib/query/template.ml: Array Discretize Fmt List Minirel_index Minirel_storage Predicate Schema Tuple
