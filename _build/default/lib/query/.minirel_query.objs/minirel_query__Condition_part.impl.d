lib/query/condition_part.ml: Array Bcp Discretize Fmt Instance Interval List Minirel_storage Template Tuple Value
