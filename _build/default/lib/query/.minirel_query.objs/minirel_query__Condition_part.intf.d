lib/query/condition_part.mli: Bcp Fmt Instance Interval Minirel_storage Template Tuple Value
