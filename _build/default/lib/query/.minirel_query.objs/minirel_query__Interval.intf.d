lib/query/interval.mli: Fmt Minirel_storage Value
