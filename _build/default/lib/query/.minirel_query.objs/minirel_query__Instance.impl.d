lib/query/instance.ml: Array Fmt Interval List Minirel_storage Predicate Template Value
