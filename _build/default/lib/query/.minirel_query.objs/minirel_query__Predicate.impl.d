lib/query/predicate.ml: Array Fmt Interval List Minirel_storage Tuple Value
