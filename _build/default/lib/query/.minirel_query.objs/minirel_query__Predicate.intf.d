lib/query/predicate.mli: Fmt Interval Minirel_storage Tuple Value
