lib/query/bcp.ml: Minirel_storage Tuple
