lib/query/template.mli: Discretize Minirel_index Minirel_storage Predicate Schema Tuple
