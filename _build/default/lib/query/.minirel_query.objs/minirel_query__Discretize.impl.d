lib/query/discretize.ml: Array Fmt Interval List Minirel_storage Value
