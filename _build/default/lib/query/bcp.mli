(** Basic condition parts (Section 3.1), stored compactly as one
    coordinate per selection condition Ci: the value itself for
    equality form, [Value.Int id] of the basic interval for interval
    form. Equality, hashing and ordering are those of {!Tuple}. *)

open Minirel_storage

type t = Tuple.t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : t Fmt.t
val to_string : t -> string
val size_bytes : t -> int

module Table : Hashtbl.S with type key = t
