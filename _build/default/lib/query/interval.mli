(** Intervals over {!Minirel_storage.Value.t}, open or closed, bounded
    or unbounded — the generality Section 2.1 of the paper allows for
    interval-form selection conditions. *)

open Minirel_storage

type lower = Neg_inf | L_incl of Value.t | L_excl of Value.t
type upper = Pos_inf | U_incl of Value.t | U_excl of Value.t

type t = { lo : lower; hi : upper }

val make : lower -> upper -> t
val full : t

(** The closed degenerate interval [v, v]. *)
val point : Value.t -> t

(** [lo, hi) — the shape of discretised basic intervals. *)
val half_open : lo:Value.t -> hi:Value.t -> t

(** [v, +inf). *)
val at_least : Value.t -> t

(** (-inf, v). *)
val below : Value.t -> t

val open_ : lo:Value.t -> hi:Value.t -> t
val closed : lo:Value.t -> hi:Value.t -> t

(** Total order on lower bounds: smaller admits more points below. *)
val compare_lower : lower -> lower -> int

(** Total order on upper bounds: larger admits more points above. *)
val compare_upper : upper -> upper -> int

val contains : t -> Value.t -> bool

(** Empty iff no value satisfies both bounds. Conservative over sparse
    domains: an open integer interval like (5, 6) is treated as
    non-empty; [contains] remains the authoritative test. *)
val is_empty : t -> bool

(** [None] when the intervals share no point. *)
val intersect : t -> t -> t option

val overlaps : t -> t -> bool

(** [subset a b] — every point of [a] lies in [b]. *)
val subset : t -> t -> bool

val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string

(** The paper requires the intervals within one interval-form condition
    to be disjoint; generators and validation use this test. *)
val pairwise_disjoint : t list -> bool
