(** Boolean predicates over tuples, with positional attribute
    references. Used for the parameter-free selections inside Cjoin and
    for residual filtering in the executor. *)

open Minirel_storage

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | Cmp of cmp * int * Value.t
  | In_set of int * Value.t list
  | In_interval of int * Interval.t
  | And of t list
  | Or of t list
  | Not of t

val eval : t -> Tuple.t -> bool

(** Shift every position by [delta]; applies a relation-local predicate
    to a joined tuple whose relation starts at offset [delta]. *)
val shift : int -> t -> t

(** Conjunction, flattening the empty and singleton cases. *)
val conj : t list -> t

(** Attribute positions the predicate reads (with duplicates). *)
val positions : t -> int list

val pp : t Fmt.t
