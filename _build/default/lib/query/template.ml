(* Query templates (Section 2.1):

     qt: select Ls from R1, ..., Rn where Cjoin and Cselect

   [Cjoin] = equijoins + parameter-free per-relation predicates.
   [Cselect] = C1 ∧ ... ∧ Cm, each Ci a disjunction of equalities or of
   disjoint intervals over one attribute, with the attribute fixed by
   the template and the constants supplied per query.

   [compile] resolves attribute names against a catalog and precomputes
   the positional layout: the joined tuple is the concatenation of the
   base tuples in relation order; the PMV works over the *expanded*
   select list Ls' = Ls ∪ attrs(Cselect) (Section 3.2). *)

open Minirel_storage

type attr_ref = { rel : int; attr : string }

let attr_ref ~rel ~attr = { rel; attr }

type selection = Eq_sel of attr_ref | Range_sel of attr_ref * Discretize.t

let selection_attr = function Eq_sel a -> a | Range_sel (a, _) -> a

type spec = {
  name : string;
  relations : string array;  (* catalog relation names, join order *)
  joins : (attr_ref * attr_ref) list;  (* equijoin edges of Cjoin *)
  fixed : (int * Predicate.t) list;  (* per-relation parameter-free filters *)
  select_list : attr_ref list;  (* Ls *)
  selections : selection array;  (* C1 .. Cm *)
}

type compiled = {
  spec : spec;
  schemas : Schema.t array;
  offsets : int array;  (* start position of relation i in the joined tuple *)
  joined_arity : int;
  expanded_select : attr_ref list;  (* Ls' *)
  expanded_joined_pos : int array;  (* joined-tuple position of each Ls' attr *)
  sel_pos : int array;  (* per Ci: position of its attribute inside the Ls' tuple *)
  visible_pos : int array;  (* positions of Ls inside the Ls' tuple *)
}

let m spec = Array.length spec.selections
let n_relations spec = Array.length spec.relations

let validate_spec spec =
  let n = n_relations spec in
  if n < 1 then invalid_arg "Template: need at least one relation";
  let check_ref ctx { rel; attr } =
    if rel < 0 || rel >= n then
      invalid_arg (Fmt.str "Template %s: %s refers to relation #%d" spec.name ctx rel);
    if attr = "" then invalid_arg (Fmt.str "Template %s: empty attribute" spec.name)
  in
  List.iter
    (fun (a, b) ->
      check_ref "join" a;
      check_ref "join" b)
    spec.joins;
  List.iter (check_ref "select list") spec.select_list;
  Array.iter (fun s -> check_ref "selection" (selection_attr s)) spec.selections;
  List.iter
    (fun (rel, _) ->
      if rel < 0 || rel >= n then invalid_arg (Fmt.str "Template %s: fixed pred relation" spec.name))
    spec.fixed;
  if spec.select_list = [] then invalid_arg "Template: empty select list";
  if Array.length spec.selections = 0 then
    invalid_arg "Template: Cselect needs at least one condition"

(* Resolve against the catalog. @raise Not_found for unknown relations,
   Invalid_argument for unknown attributes. *)
let compile catalog spec =
  validate_spec spec;
  let schemas =
    Array.map (fun name -> Minirel_index.Catalog.schema catalog name) spec.relations
  in
  let n = Array.length schemas in
  let offsets = Array.make n 0 in
  for i = 1 to n - 1 do
    offsets.(i) <- offsets.(i - 1) + Schema.arity schemas.(i - 1)
  done;
  let joined_arity = offsets.(n - 1) + Schema.arity schemas.(n - 1) in
  let joined_pos { rel; attr } =
    match Schema.pos_opt schemas.(rel) attr with
    | Some p -> offsets.(rel) + p
    | None ->
        invalid_arg
          (Fmt.str "Template %s: attribute %s not in relation %s" spec.name attr
             spec.relations.(rel))
  in
  (* Ls' = Ls followed by the Cselect attributes not already in Ls. *)
  let sel_attrs = Array.to_list (Array.map selection_attr spec.selections) in
  let expanded_select =
    spec.select_list
    @ List.filter
        (fun a -> not (List.exists (fun b -> joined_pos a = joined_pos b) spec.select_list))
        (List.sort_uniq compare sel_attrs)
  in
  let expanded_joined_pos = Array.of_list (List.map joined_pos expanded_select) in
  let pos_in_expanded a =
    let target = joined_pos a in
    let rec find i =
      if i >= Array.length expanded_joined_pos then
        invalid_arg "Template.compile: attr missing from Ls'"
      else if expanded_joined_pos.(i) = target then i
      else find (i + 1)
    in
    find 0
  in
  let sel_pos = Array.map (fun s -> pos_in_expanded (selection_attr s)) spec.selections in
  let visible_pos = Array.of_list (List.map pos_in_expanded spec.select_list) in
  { spec; schemas; offsets; joined_arity; expanded_select; expanded_joined_pos; sel_pos; visible_pos }

let joined_pos c { rel; attr } = c.offsets.(rel) + Schema.pos c.schemas.(rel) attr

(* Position of an attribute within the Ls' result tuple.
   @raise Not_found when the attribute is not part of Ls'. *)
let expanded_pos c a =
  let target = joined_pos c a in
  let rec find i =
    if i >= Array.length c.expanded_joined_pos then raise Not_found
    else if c.expanded_joined_pos.(i) = target then i
    else find (i + 1)
  in
  find 0

(* Project a joined tuple onto Ls' — the shape stored in PMVs and
   returned to the answering layer. *)
let result_of_joined c joined = Tuple.project joined c.expanded_joined_pos

(* Project an Ls' result tuple onto the user-visible Ls. *)
let visible_of_result c result = Tuple.project result c.visible_pos

(* Fixed (parameter-free) predicate of relation [i], positions shifted
   into joined-tuple coordinates. *)
let fixed_pred_joined c i =
  Predicate.conj
    (List.filter_map
       (fun (rel, p) -> if rel = i then Some (Predicate.shift c.offsets.(i) p) else None)
       c.spec.fixed)

(* Average Ls'-tuple size in bytes over a sample; the paper's [At]. *)
let avg_result_bytes sample =
  match sample with
  | [] -> 0
  | _ ->
      let total = List.fold_left (fun acc t -> acc + Tuple.size_bytes t) 0 sample in
      total / List.length sample
