(* Basic condition parts (Section 3.1), stored compactly: one coordinate
   per selection condition Ci —

   - equality form:  the value b_i itself;
   - interval form:  [Value.Int id] of the basic interval (b_i, c_i).

   A bcp is thus a small value array; equality, hashing and ordering are
   those of [Tuple]. *)

open Minirel_storage

type t = Tuple.t

let equal = Tuple.equal
let compare = Tuple.compare
let hash = Tuple.hash
let pp = Tuple.pp
let to_string = Tuple.to_string

let size_bytes = Tuple.size_bytes

module Table = Tuple.Table
