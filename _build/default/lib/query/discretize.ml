(* Discretisation of an interval-form selection attribute into "basic
   intervals" via dividing values (Section 3.1).

   [cuts] = sorted distinct dividing values c_0 < c_1 < ... < c_{n-1}
   induce n+1 basic intervals, identified by 0..n:

     id 0  = (-inf, c_0)
     id i  = [c_{i-1}, c_i)     for 0 < i < n
     id n  = [c_{n-1}, +inf)

   They are pairwise disjoint and cover the whole domain, as required.

   Dividing values come from (a) the from/to lists of a form-based UI
   ([of_from_to_lists]), (b) the DBA ([of_cuts]), or (c) a trace — the
   paper cites continuous-feature discretisation [11]; [equi_depth]
   implements the standard unsupervised variant: quantile cuts over a
   sample of queried values. *)

open Minirel_storage

type t = { cuts : Value.t array }

let of_cuts cuts =
  let cuts = Array.of_list cuts in
  Array.sort Value.compare cuts;
  let distinct = ref [] in
  Array.iter
    (fun v ->
      match !distinct with
      | prev :: _ when Value.equal prev v -> ()
      | _ -> distinct := v :: !distinct)
    cuts;
  { cuts = Array.of_list (List.rev !distinct) }

(* n equal-width bins over integer domain [lo, hi): cuts at lo + k*w. *)
let equal_width ~lo ~hi ~bins =
  if bins < 1 then invalid_arg "Discretize.equal_width: bins must be >= 1";
  if hi <= lo then invalid_arg "Discretize.equal_width: empty domain";
  let w = max 1 ((hi - lo + bins - 1) / bins) in
  let rec build acc c = if c >= hi then List.rev acc else build (Value.Int c :: acc) (c + w) in
  of_cuts (build [] lo)

(* Union of the UI's from-values and to-values (Section 3.1). *)
let of_from_to_lists ~from_values ~to_values = of_cuts (from_values @ to_values)

(* Quantile cuts from a sample (equi-depth / unsupervised discretisation). *)
let equi_depth ~bins samples =
  if bins < 1 then invalid_arg "Discretize.equi_depth: bins must be >= 1";
  let arr = Array.of_list samples in
  Array.sort Value.compare arr;
  let n = Array.length arr in
  if n = 0 then { cuts = [||] }
  else begin
    let cuts = ref [] in
    for k = 1 to bins - 1 do
      let idx = k * n / bins in
      if idx < n then cuts := arr.(idx) :: !cuts
    done;
    of_cuts !cuts
  end

let n_intervals t = Array.length t.cuts + 1

(* @raise Invalid_argument on out-of-range id. *)
let interval_of_id t id =
  let n = Array.length t.cuts in
  if id < 0 || id > n then invalid_arg "Discretize.interval_of_id";
  if n = 0 then Interval.full
  else if id = 0 then Interval.below t.cuts.(0)
  else if id = n then Interval.at_least t.cuts.(n - 1)
  else Interval.half_open ~lo:t.cuts.(id - 1) ~hi:t.cuts.(id)

(* id of the basic interval containing [v]: the number of cuts <= v. *)
let id_of_value t v =
  let lo = ref 0 and hi = ref (Array.length t.cuts) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare t.cuts.(mid) v <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* All (basic interval id, basic ∩ query) pieces overlapping a query
   interval, in id order. This is the per-Ci step of Operation O1. *)
let decompose t query_interval =
  let n = n_intervals t in
  (* Locate the first candidate id via the query's lower bound. *)
  let first =
    match query_interval.Interval.lo with
    | Interval.Neg_inf -> 0
    | Interval.L_incl v | Interval.L_excl v -> id_of_value t v
  in
  let rec collect id acc =
    if id >= n then List.rev acc
    else
      let basic = interval_of_id t id in
      match Interval.intersect basic query_interval with
      | Some piece -> collect (id + 1) ((id, piece) :: acc)
      | None ->
          (* ids are ordered; once past the query's upper end, stop *)
          if acc = [] then collect (id + 1) acc else List.rev acc
  in
  collect first []

let pp ppf t =
  Fmt.pf ppf "cuts=[%a]" Fmt.(array ~sep:semi Value.pp) t.cuts
