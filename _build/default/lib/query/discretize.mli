(** Discretisation of an interval-form selection attribute into "basic
    intervals" via dividing values (Section 3.1 of the paper).

    Sorted distinct cuts [c_0 < ... < c_{n-1}] induce [n+1] basic
    intervals identified by [0..n]:
    {ul
    {- id [0] = (-inf, c_0)}
    {- id [i] = [c_{i-1}, c_i) for 0 < i < n}
    {- id [n] = [c_{n-1}, +inf)}}
    They are pairwise disjoint and cover the whole domain. *)

open Minirel_storage

type t

(** Build a grid; cuts are sorted and deduplicated. *)
val of_cuts : Value.t list -> t

(** [bins] equal-width cuts over the integer domain [lo, hi).
    @raise Invalid_argument on an empty domain or [bins < 1]. *)
val equal_width : lo:int -> hi:int -> bins:int -> t

(** Dividing values from a form-based UI's from/to lists (Section 3.1). *)
val of_from_to_lists : from_values:Value.t list -> to_values:Value.t list -> t

(** Quantile cuts from a sample of queried values — the unsupervised
    continuous-feature-discretisation stand-in the paper cites.
    @raise Invalid_argument if [bins < 1]. *)
val equi_depth : bins:int -> Value.t list -> t

val n_intervals : t -> int

(** @raise Invalid_argument on out-of-range ids. *)
val interval_of_id : t -> int -> Interval.t

(** Id of the basic interval containing the value. *)
val id_of_value : t -> Value.t -> int

(** All (basic id, basic ∩ query) pieces overlapping the query
    interval, in id order — the per-condition step of Operation O1. *)
val decompose : t -> Interval.t -> (int * Interval.t) list

val pp : t Fmt.t
