(* Boolean predicates over tuples, used for the parameter-free selection
   conditions inside Cjoin and for residual filtering in the executor.
   Attribute references are positional. *)

open Minirel_storage

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | Cmp of cmp * int * Value.t
  | In_set of int * Value.t list
  | In_interval of int * Interval.t
  | And of t list
  | Or of t list
  | Not of t

let rec eval p (tuple : Tuple.t) =
  match p with
  | True -> true
  | Cmp (op, pos, v) -> (
      let c = Value.compare tuple.(pos) v in
      match op with
      | Eq -> c = 0
      | Ne -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0)
  | In_set (pos, vs) -> List.exists (Value.equal tuple.(pos)) vs
  | In_interval (pos, iv) -> Interval.contains iv tuple.(pos)
  | And ps -> List.for_all (fun p -> eval p tuple) ps
  | Or ps -> List.exists (fun p -> eval p tuple) ps
  | Not p -> not (eval p tuple)

(* Shift every position by [delta]; used when a per-relation predicate is
   applied to a joined tuple where the relation starts at offset delta. *)
let rec shift delta = function
  | True -> True
  | Cmp (op, pos, v) -> Cmp (op, pos + delta, v)
  | In_set (pos, vs) -> In_set (pos + delta, vs)
  | In_interval (pos, iv) -> In_interval (pos + delta, iv)
  | And ps -> And (List.map (shift delta) ps)
  | Or ps -> Or (List.map (shift delta) ps)
  | Not p -> Not (shift delta p)

let conj = function [] -> True | [ p ] -> p | ps -> And ps

(* Attribute positions a predicate reads. *)
let rec positions = function
  | True -> []
  | Cmp (_, pos, _) | In_set (pos, _) | In_interval (pos, _) -> [ pos ]
  | And ps | Or ps -> List.concat_map positions ps
  | Not p -> positions p

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | Cmp (op, pos, v) ->
      let s =
        match op with Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
      in
      Fmt.pf ppf "#%d %s %a" pos s Value.pp v
  | In_set (pos, vs) -> Fmt.pf ppf "#%d in {%a}" pos Fmt.(list ~sep:comma Value.pp) vs
  | In_interval (pos, iv) -> Fmt.pf ppf "#%d in %a" pos Interval.pp iv
  | And ps -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " and ") pp) ps
  | Or ps -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " or ") pp) ps
  | Not p -> Fmt.pf ppf "not %a" pp p
