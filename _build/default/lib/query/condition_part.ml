(* Operation O1 (Section 3.3): break a query's Cselect into
   non-overlapping condition parts, each tagged with its containing
   basic condition part.

   Per condition Ci the atoms are:
   - equality form: one atom per value v (the condition part coordinate
     equals its containing bcp coordinate — always exact);
   - interval form: one atom per (basic interval ∩ query interval)
     piece; exact iff the piece covers the whole basic interval.

   The condition parts are the cross product of the per-Ci atoms. They
   are pairwise non-overlapping because the values within an equality Ci
   are distinct and both the query intervals and the basic intervals are
   pairwise disjoint. *)

open Minirel_storage

type atom =
  | A_eq of Value.t
  | A_range of { id : int; piece : Interval.t; exact : bool }

type t = { bcp : Bcp.t; exact : bool; atoms : atom array }

let bcp t = t.bcp
let is_exact t = t.exact

let atom_coord = function
  | A_eq v -> v
  | A_range { id; _ } -> Value.Int id

(* Atoms of condition Ci for the given disjuncts. *)
let atoms_of_condition sel d =
  match (sel, d) with
  | Template.Eq_sel _, Instance.Dvalues vs -> List.map (fun v -> A_eq v) vs
  | Template.Range_sel (_, grid), Instance.Dintervals ivs ->
      List.concat_map
        (fun iv ->
          List.map
            (fun (id, piece) ->
              let exact = Interval.equal piece (Discretize.interval_of_id grid id) in
              A_range { id; piece; exact })
            (Discretize.decompose grid iv))
        ivs
  | Template.Eq_sel _, Instance.Dintervals _ | Template.Range_sel _, Instance.Dvalues _ ->
      invalid_arg "Condition_part: parameter form mismatch"

(* All condition parts of a query, cross product over the Ci atoms. *)
let decompose instance =
  let compiled = Instance.compiled instance in
  let sels = compiled.Template.spec.Template.selections in
  let per_condition =
    Array.to_list (Array.mapi (fun i d -> atoms_of_condition sels.(i) d) (Instance.params instance))
  in
  let rec cross = function
    | [] -> [ [] ]
    | atoms :: rest ->
        let tails = cross rest in
        List.concat_map (fun a -> List.map (fun tail -> a :: tail) tails) atoms
  in
  List.map
    (fun atom_list ->
      let atoms = Array.of_list atom_list in
      let bcp = Array.map atom_coord atoms in
      let exact =
        Array.for_all
          (function A_eq _ -> true | A_range { exact; _ } -> exact)
          atoms
      in
      { bcp; exact; atoms })
    (cross per_condition)

(* The paper's combination factor h: the number of condition parts. *)
let combination_factor instance = List.length (decompose instance)

(* Does the Ls' result tuple [result] belong to this condition part?
   Note for Operation O2: when the tuple is already known to belong to
   the cp's containing bcp (it came out of that bcp's PMV entry) and the
   cp is exact, the check can be skipped — test [is_exact] first. *)
let check compiled cp (result : Tuple.t) =
  Array.for_all2
    (fun atom pos ->
      match atom with
      | A_eq v -> Value.equal result.(pos) v
      | A_range { piece; _ } -> Interval.contains piece result.(pos))
    cp.atoms compiled.Template.sel_pos

(* The containing bcp of a result tuple: read each selection attribute
   out of the Ls' tuple and encode it as a bcp coordinate. Used in
   Operation O3 to decide where a freshly computed tuple may be cached,
   and by deferred maintenance to locate victims. *)
let bcp_of_result compiled (result : Tuple.t) : Bcp.t =
  let sels = compiled.Template.spec.Template.selections in
  Array.mapi
    (fun i sel ->
      let v = result.(compiled.Template.sel_pos.(i)) in
      match sel with
      | Template.Eq_sel _ -> v
      | Template.Range_sel (_, grid) -> Value.Int (Discretize.id_of_value grid v))
    sels

let pp ppf t =
  Fmt.pf ppf "cp{bcp=%a%s}" Bcp.pp t.bcp (if t.exact then "" else " partial")
