(** Query templates (Section 2.1 of the paper):

    {v qt: select Ls from R1, ..., Rn where Cjoin and Cselect v}

    [Cjoin] = equijoin edges plus parameter-free per-relation
    predicates; [Cselect] = C1 ∧ ... ∧ Cm, each Ci a disjunction of
    equalities or of disjoint intervals over one attribute fixed by the
    template, with the constants supplied per query ({!Instance}).

    [compile] resolves names against a catalog and precomputes the
    positional layout. The joined tuple is the concatenation of base
    tuples in relation order; PMVs work over the {e expanded} select
    list Ls' = Ls ∪ attrs(Cselect) (Section 3.2). *)

open Minirel_storage

type attr_ref = { rel : int  (** index into [relations] *); attr : string }

val attr_ref : rel:int -> attr:string -> attr_ref

type selection = Eq_sel of attr_ref | Range_sel of attr_ref * Discretize.t

val selection_attr : selection -> attr_ref

type spec = {
  name : string;
  relations : string array;  (** catalog relation names, join order *)
  joins : (attr_ref * attr_ref) list;  (** equijoin edges of Cjoin *)
  fixed : (int * Predicate.t) list;
      (** per-relation parameter-free filters; positions are local to
          that relation's schema *)
  select_list : attr_ref list;  (** Ls *)
  selections : selection array;  (** C1 .. Cm *)
}

type compiled = {
  spec : spec;
  schemas : Schema.t array;
  offsets : int array;  (** start of relation i in the joined tuple *)
  joined_arity : int;
  expanded_select : attr_ref list;  (** Ls' *)
  expanded_joined_pos : int array;  (** joined-tuple position per Ls' attr *)
  sel_pos : int array;  (** per Ci: its attribute's position in the Ls' tuple *)
  visible_pos : int array;  (** positions of Ls within the Ls' tuple *)
}

val m : spec -> int
val n_relations : spec -> int

(** Resolve the spec against the catalog.
    @raise Invalid_argument on malformed specs or unknown attributes;
    @raise Not_found on unknown relations. *)
val compile : Minirel_index.Catalog.t -> spec -> compiled

(** Joined-tuple position of an attribute. *)
val joined_pos : compiled -> attr_ref -> int

(** Position of an attribute within the Ls' result tuple.
    @raise Not_found when the attribute is not part of Ls'. *)
val expanded_pos : compiled -> attr_ref -> int

(** Project a joined tuple onto Ls' — the shape PMVs store and the
    answering layer streams. *)
val result_of_joined : compiled -> Tuple.t -> Tuple.t

(** Project an Ls' result tuple onto the user-visible Ls. *)
val visible_of_result : compiled -> Tuple.t -> Tuple.t

(** Fixed predicate of relation [i] with positions shifted into
    joined-tuple coordinates. *)
val fixed_pred_joined : compiled -> int -> Predicate.t

(** Mean Ls'-tuple size in bytes over a sample; the paper's [At]. *)
val avg_result_bytes : Tuple.t list -> int
