(** The Section 4.1 simulation study: a universe of basic condition
    parts, queries of h iid Zipfian bcps, and a PMV managed by a
    replacement policy. A query is a {e hit} if any of its h bcps is
    resident when it arrives (the paper's "partial hit"). CLOCK gets
    L = 1.02 N entries and 2Q gets Am = N + ghost A1 = N/2 under the
    same storage budget. *)

type config = {
  universe : int;  (** distinct bcps (paper: 1M) *)
  n : int;  (** the paper's N (2Q Am capacity; CLOCK gets 1.02N) *)
  alpha : float;
  h : int;  (** bcps per query *)
  policy : Minirel_cache.Policies.kind;
  warmup : int;  (** queries before measurement (paper: 1M) *)
  measure : int;  (** measured queries (paper: 1M) *)
  seed : int;
}

(** The paper's exact sizes. *)
val paper_default : config

(** Universe and N scaled /10 (same cache-to-universe ratio), 200K+200K
    queries; minutes become seconds. *)
val scaled_default : config

type result = {
  config : config;
  hit_prob : float;
  avg_hit_bcps : float;  (** mean resident bcps per query, of its h *)
  resident : int;  (** entries resident at the end *)
  capacity : int;
  top_ranks_for_90pct : int;  (** hottest bcps holding 90% of query mass *)
}

(** @raise Invalid_argument if [h < 1]. *)
val run : config -> result

(** Pattern-drift variant: after the warm-up, one baseline window of
    [every] queries is measured, then the rank -> bcp mapping shifts by
    [drift] (yesterday's hot bcps go cold) and [windows] consecutive
    windows are measured. Returns (baseline, per-window hit
    probabilities): the expected dip-then-recovery is the Section 3.2
    adaptation story, measured.
    @raise Invalid_argument on non-positive window parameters. *)
val run_drift : config -> drift:int -> every:int -> windows:int -> float * float list
