lib/sim/hitprob.mli: Minirel_cache
