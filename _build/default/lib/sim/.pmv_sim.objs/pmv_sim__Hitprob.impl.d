lib/sim/hitprob.ml: List Minirel_cache Minirel_workload
