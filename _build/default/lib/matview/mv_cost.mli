(** Analytical maintenance-cost model behind Figures 11 and 12: one
    transaction applies [p * delta_size] inserts and
    [(1-p) * delta_size] deletes to base relation R of an R ⋈ S view.
    Costs are logical I/Os per changed base tuple; PMV in-memory work
    is expressed in I/O-equivalents so both curves share an axis. The
    parameter reconstruction is documented in DESIGN.md Section 6. *)

type params = {
  delta_size : int;  (** |ΔR|; the paper fixes 1000 *)
  probe_io : float;  (** delta-join index probe into S per changed tuple *)
  fanout : float;  (** view tuples affected per changed R tuple *)
  view_insert_io : float;  (** per view tuple inserted into the MV *)
  view_delete_io : float;  (** per view tuple deleted (dearer than insert) *)
  pmv_delete_io : float;  (** per deleted R tuple, aux-index path *)
  pmv_residual_io : float;  (** uncached-PMV disk touch per deleted tuple *)
  pmv_insert_io : float;  (** epsilon bookkeeping per inserted tuple *)
}

val default : params

(** Total workload (I/Os) to maintain the traditional MV.
    @raise Invalid_argument unless [0 <= p <= 1]. *)
val tw_mv : params -> p:float -> float

(** Total workload (I/O-equivalents) to maintain the PMV.
    [idealized] drops the insert-side epsilon, matching the paper's
    text ("the maintenance overhead of V_PM is 0" at p = 100%); the
    default keeps it, matching its Figure 12.
    @raise Invalid_argument unless [0 <= p <= 1]. *)
val tw_pmv : ?idealized:bool -> params -> p:float -> float

val speedup : params -> p:float -> float

(** Minimum speedup over p in {0, 0.1, ..., 1}; the paper claims it
    stays above two orders of magnitude. *)
val min_speedup : params -> float
