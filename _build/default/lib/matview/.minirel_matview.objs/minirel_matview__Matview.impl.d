lib/matview/matview.ml: Array Fmt Heap_file Instance List Minirel_exec Minirel_index Minirel_query Minirel_storage Minirel_txn Predicate Schema Template
