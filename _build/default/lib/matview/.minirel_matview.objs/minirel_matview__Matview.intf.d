lib/matview/matview.mli: Minirel_index Minirel_query Minirel_storage Minirel_txn
