lib/matview/mv_cost.mli:
