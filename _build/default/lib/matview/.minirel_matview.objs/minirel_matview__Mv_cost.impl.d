lib/matview/mv_cost.ml: Float
