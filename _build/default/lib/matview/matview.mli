(** Traditional materialized views — the baseline of Section 2.2. A MV
    over a template stores {e all} Ls' tuples of Cjoin in a catalog
    relation (so maintenance is charged simulated I/Os) and is
    maintained immediately on every base-table change: delta joins for
    inserts and deletes, delete+insert for updates. *)

type t

(** Create the backing relation [mv_<name>], a full-tuple index for
    delete lookups, and populate it with the current join result. *)
val create :
  Minirel_index.Catalog.t -> name:string -> Minirel_query.Template.compiled -> t

val rel_name : t -> string
val cardinality : t -> int
val size_bytes : t -> int

(** Immediate maintenance; give this to {!Minirel_txn.Txn.register_hook}
    or use {!attach}. *)
val on_delta : t -> Minirel_txn.Txn.delta -> unit

val attach : t -> Minirel_txn.Txn.t -> unit

(** Current view contents (Ls' tuples). *)
val contents : t -> Minirel_storage.Tuple.t list

(** Answer a template query entirely from the view. *)
val answer : t -> Minirel_query.Instance.t -> Minirel_storage.Tuple.t list
