(* Traditional materialized views: the baseline the paper compares
   against (Section 2.2). A MV over a template stores *all* Ls' tuples
   of Cjoin and is maintained immediately on every base-table change:
   inserts and deletes delta-join into the view, updates are
   delete+insert. The MV lives in the catalog as a regular relation so
   its maintenance is charged real (simulated) I/Os. *)

open Minirel_storage
open Minirel_query
module Catalog = Minirel_index.Catalog
module Index = Minirel_index.Index

type t = {
  name : string;
  compiled : Template.compiled;
  catalog : Catalog.t;
  rel_name : string;  (* catalog relation backing the view *)
  lookup_index : string;  (* composite index over all view attributes *)
  mutable maintenance_inserts : int;
  mutable maintenance_deletes : int;
}

let view_schema ~name compiled =
  let attr_ty (a : Template.attr_ref) =
    let sch = compiled.Template.schemas.(a.Template.rel) in
    Schema.attr_ty sch (Schema.pos sch a.Template.attr)
  in
  Schema.create name
    (List.mapi
       (fun i a ->
         (Fmt.str "c%d_r%d_%s" i a.Template.rel a.Template.attr, attr_ty a))
       compiled.Template.expanded_select)

(* Create the view relation, a full-tuple index for delete lookups, and
   populate it with the current join result. *)
let create catalog ~name compiled =
  let rel_name = "mv_" ^ name in
  let schema = view_schema ~name:rel_name compiled in
  let _heap = Catalog.create_relation catalog schema in
  let all_attrs = Array.to_list (Array.init (Schema.arity schema) (Schema.attr_name schema)) in
  let lookup_index = rel_name ^ "_full" in
  let _ix = Catalog.create_index catalog ~rel:rel_name ~name:lookup_index ~attrs:all_attrs () in
  let t =
    {
      name;
      compiled;
      catalog;
      rel_name;
      lookup_index;
      maintenance_inserts = 0;
      maintenance_deletes = 0;
    }
  in
  let plan = Minirel_exec.Planner.plan_full_join catalog compiled in
  Minirel_exec.Cursor.iter
    (fun tuple -> ignore (Catalog.insert catalog ~rel:rel_name tuple))
    (Minirel_exec.Executor.cursor catalog plan);
  t

let rel_name t = t.rel_name
let cardinality t = Heap_file.n_tuples (Catalog.heap t.catalog t.rel_name)
let size_bytes t = Heap_file.size_bytes (Catalog.heap t.catalog t.rel_name)

let template_rel_index t rel =
  let rels = t.compiled.Template.spec.Template.relations in
  let rec find i =
    if i >= Array.length rels then None else if rels.(i) = rel then Some i else find (i + 1)
  in
  find 0

let insert_results t tuples =
  List.iter
    (fun tuple ->
      ignore (Catalog.insert t.catalog ~rel:t.rel_name tuple);
      t.maintenance_inserts <- t.maintenance_inserts + 1)
    tuples

let delete_results t tuples =
  let ix =
    match
      List.find_opt
        (fun ix -> Index.name ix = t.lookup_index)
        (Catalog.indexes t.catalog t.rel_name)
    with
    | Some ix -> ix
    | None -> assert false
  in
  List.iter
    (fun tuple ->
      match Index.find ix tuple with
      | [] -> ()  (* duplicate delta rows may race for the same victim *)
      | rid :: _ ->
          ignore (Catalog.delete t.catalog ~rel:t.rel_name rid);
          t.maintenance_deletes <- t.maintenance_deletes + 1)
    tuples

let delta_join t ~delta_rel deltas =
  let plan = Minirel_exec.Planner.plan_delta_join t.catalog t.compiled ~delta_rel deltas in
  Minirel_exec.Executor.run_to_list t.catalog plan

(* Immediate maintenance: hook this into [Txn.register_hook]. *)
let on_delta t (delta : Minirel_txn.Txn.delta) =
  match template_rel_index t delta.Minirel_txn.Txn.rel with
  | None -> ()  (* change to a relation outside this view *)
  | Some i ->
      let { Minirel_txn.Txn.inserted; deleted; updated; _ } = delta in
      (* note: the delta join must run against the post-change base
         tables for inserts and, for deletes, still works because the
         deleted tuples are passed literally *)
      if deleted <> [] then delete_results t (delta_join t ~delta_rel:i deleted);
      if inserted <> [] then insert_results t (delta_join t ~delta_rel:i inserted);
      if updated <> [] then begin
        let olds = List.map fst updated and news = List.map snd updated in
        delete_results t (delta_join t ~delta_rel:i olds);
        insert_results t (delta_join t ~delta_rel:i news)
      end

let attach t txn_mgr =
  Minirel_txn.Txn.register_hook txn_mgr ~name:("mv:" ^ t.name) (on_delta t)

(* All current view tuples (Ls' shape); for tests and MV-based answers. *)
let contents t =
  Heap_file.fold (Catalog.heap t.catalog t.rel_name) (fun acc _rid tuple -> tuple :: acc) []

(* Answer a query entirely from the view: filter by Cselect. *)
let answer t instance =
  let pred = Instance.cselect_pred_result instance in
  List.filter (Predicate.eval pred) (contents t)
