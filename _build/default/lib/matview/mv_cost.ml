(* Analytical maintenance-cost model behind Figures 11 and 12.

   The paper's model (full version [25], validated against NCR Teradata
   in [24]) is unavailable; DESIGN.md Section 6 documents the explicit
   reconstruction used here. One transaction T applies p*|ΔR| inserts
   and (1-p)*|ΔR| deletes to base relation R of an R ⋈ S view. Costs
   are logical I/Os per changed base tuple; PMV-side in-memory work is
   expressed in I/O-equivalents so the two curves share one axis.

   - MV insert: delta-join probe into S + fanout view-tuple insertions.
   - MV delete: same probe + fanout view-tuple deletions (more expensive
     than insertions, per the paper).
   - PMV insert: a pure in-memory "nothing to do" check ([pmv_insert_io],
     epsilon). The paper's text reports PMV maintenance 0 at p = 100%;
     its speedup figure still shows a finite ~550x there, implying this
     epsilon-class bookkeeping term. Both views are exposed:
     [tw_pmv ~idealized:true] drops the term (text), the default keeps
     it (figure).
   - PMV delete: auxiliary-index probe on the (mostly memory-resident)
     PMV plus a residual disk-touch probability for its uncached tail. *)

type params = {
  delta_size : int;  (* |ΔR|; the paper fixes 1000 *)
  probe_io : float;  (* index probe into S per changed R tuple *)
  fanout : float;  (* view tuples affected per changed R tuple *)
  view_insert_io : float;  (* per view tuple inserted into VM *)
  view_delete_io : float;  (* per view tuple deleted from VM *)
  pmv_delete_io : float;  (* per deleted R tuple, aux-index path *)
  pmv_residual_io : float;  (* uncached-PMV disk touch, per deleted R tuple *)
  pmv_insert_io : float;  (* epsilon bookkeeping per inserted R tuple *)
}

let default =
  {
    delta_size = 1000;
    probe_io = 2.0;
    fanout = 2.0;
    view_insert_io = 1.5;
    view_delete_io = 2.5;
    pmv_delete_io = 0.02;
    pmv_residual_io = 0.01;
    pmv_insert_io = 0.009;
  }

let check_p p =
  if p < 0.0 || p > 1.0 then invalid_arg "Mv_cost: p must be within [0, 1]"

(* Total workload (I/Os) to maintain the traditional MV. *)
let tw_mv params ~p =
  check_p p;
  let n = float_of_int params.delta_size in
  let insert_cost = params.probe_io +. (params.fanout *. params.view_insert_io) in
  let delete_cost = params.probe_io +. (params.fanout *. params.view_delete_io) in
  n *. ((p *. insert_cost) +. ((1.0 -. p) *. delete_cost))

(* Total workload (I/O-equivalents) to maintain the PMV. *)
let tw_pmv ?(idealized = false) params ~p =
  check_p p;
  let n = float_of_int params.delta_size in
  let delete_cost = params.pmv_delete_io +. params.pmv_residual_io in
  let insert_cost = if idealized then 0.0 else params.pmv_insert_io in
  n *. (((1.0 -. p) *. delete_cost) +. (p *. insert_cost))

let speedup params ~p =
  let pmv = tw_pmv params ~p in
  if pmv <= 0.0 then infinity else tw_mv params ~p /. pmv

(* The paper's claim: PMV maintenance is at least two orders of
   magnitude cheaper for every insert fraction. *)
let min_speedup params =
  let rec go p best =
    if p > 100 then best
    else go (p + 10) (Float.min best (speedup params ~p:(float_of_int p /. 100.)))
  in
  go 0 infinity
