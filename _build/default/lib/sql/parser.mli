(** Recursive-descent parser producing {!Ast.query}. *)

exception Error of string

(** Parse one SELECT query.
    @raise Error or {!Lexer.Error} on malformed input. *)
val parse : string -> Ast.query

(** Parse one top-level statement: SELECT, CREATE TABLE, CREATE INDEX,
    INSERT INTO ... VALUES, or DELETE FROM.
    @raise Error or {!Lexer.Error} on malformed input. *)
val parse_statement : string -> Ast.statement
