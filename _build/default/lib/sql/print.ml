(* Render a compiled template + instance back to SQL text accepted by
   {!Parser} — the inverse of {!Binder}, used by tooling and by the
   round-trip property tests. Shapes the grammar cannot express (Or/Not
   fixed predicates, bounded intervals open on both ends) raise
   [Unsupported]. *)

open Minirel_storage
open Minirel_query

exception Unsupported of string

let fail fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

let lit_of_value = function
  | Value.Int i -> string_of_int i
  | Value.Float f ->
      let s = Printf.sprintf "%.17g" f in
      (* the grammar has no bare ".5" or "5." forms *)
      if String.contains s '.' || String.contains s 'e' || String.contains s 'E' then s
      else s ^ ".0"
  | Value.Str s -> "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"
  | Value.Null -> fail "NULL literals are not part of the grammar"

let attr_text (compiled : Template.compiled) (r : Template.attr_ref) =
  Fmt.str "%s.%s" compiled.Template.spec.Template.relations.(r.Template.rel) r.Template.attr

(* One fixed predicate (relation-local positions) as atoms. *)
let rec fixed_pred_text compiled rel p =
  let schema = compiled.Template.schemas.(rel) in
  let attr pos = Fmt.str "%s.%s" compiled.Template.spec.Template.relations.(rel) (Schema.attr_name schema pos) in
  match p with
  | Predicate.True -> []
  | Predicate.Cmp (op, pos, v) ->
      let op_s =
        match op with
        | Predicate.Eq -> "="
        | Predicate.Ne -> "<>"
        | Predicate.Lt -> "<"
        | Predicate.Le -> "<="
        | Predicate.Gt -> ">"
        | Predicate.Ge -> ">="
      in
      [ Fmt.str "%s %s %s" (attr pos) op_s (lit_of_value v) ]
  | Predicate.In_set (pos, vs) ->
      [ Fmt.str "%s in (%s)" (attr pos) (String.concat ", " (List.map lit_of_value vs)) ]
  | Predicate.In_interval (pos, iv) -> (
      match (iv.Interval.lo, iv.Interval.hi) with
      | Interval.L_incl lo, Interval.U_incl hi ->
          [ Fmt.str "%s between %s and %s" (attr pos) (lit_of_value lo) (lit_of_value hi) ]
      | _ -> fail "only closed intervals are expressible as fixed predicates")
  | Predicate.And ps -> List.concat_map (fixed_pred_text compiled rel) ps
  | Predicate.Or _ | Predicate.Not _ ->
      fail "Or/Not fixed predicates are outside the grammar"

let interval_atom attr (iv : Interval.t) =
  match (iv.Interval.lo, iv.Interval.hi) with
  | Interval.L_incl lo, Interval.U_incl hi ->
      Fmt.str "%s between %s and %s" attr (lit_of_value lo) (lit_of_value hi)
  | Interval.L_incl lo, Interval.Pos_inf -> Fmt.str "%s >= %s" attr (lit_of_value lo)
  | Interval.L_excl lo, Interval.Pos_inf -> Fmt.str "%s > %s" attr (lit_of_value lo)
  | Interval.Neg_inf, Interval.U_incl hi -> Fmt.str "%s <= %s" attr (lit_of_value hi)
  | Interval.Neg_inf, Interval.U_excl hi -> Fmt.str "%s < %s" attr (lit_of_value hi)
  | Interval.Neg_inf, Interval.Pos_inf -> fail "the full interval needs no condition"
  | _ -> fail "bounded intervals open on an end are outside the grammar"

(* Render the query. @raise Unsupported for shapes outside the grammar;
   @raise Invalid_argument when relation names repeat (ambiguous FROM). *)
let to_sql instance =
  let compiled = Instance.compiled instance in
  let spec = compiled.Template.spec in
  let rels = Array.to_list spec.Template.relations in
  if List.length (List.sort_uniq String.compare rels) <> List.length rels then
    invalid_arg "Print.to_sql: repeated relation names are ambiguous in FROM";
  let select =
    String.concat ", " (List.map (attr_text compiled) spec.Template.select_list)
  in
  let from = String.concat ", " rels in
  let joins =
    List.map
      (fun (a, b) -> Fmt.str "%s = %s" (attr_text compiled a) (attr_text compiled b))
      spec.Template.joins
  in
  let fixed =
    List.concat_map (fun (rel, p) -> fixed_pred_text compiled rel p) spec.Template.fixed
  in
  let params = Instance.params instance in
  let groups =
    Array.to_list
      (Array.mapi
         (fun i sel ->
           let attr = attr_text compiled (Template.selection_attr sel) in
           let atoms =
             match (sel, params.(i)) with
             | Template.Eq_sel _, Instance.Dvalues vs ->
                 List.map (fun v -> Fmt.str "%s = %s" attr (lit_of_value v)) vs
             | Template.Range_sel _, Instance.Dintervals ivs ->
                 List.map (interval_atom attr) ivs
             | _ -> fail "parameter form mismatch"
           in
           "(" ^ String.concat " or " atoms ^ ")")
         spec.Template.selections)
  in
  Fmt.str "select %s from %s where %s" select from
    (String.concat " and " (joins @ fixed @ groups))
