(* Bind a parsed query against a catalog: resolve relations and
   attributes, split WHERE into Cjoin (joins + fixed predicates) and
   Cselect (the parenthesised groups, in order), and extract this
   query's parameters.

   Two queries with the same template structure but different literals
   bind to the same canonical signature, so PMVs built for the template
   serve them all — the paper's form-based-application setting. *)

open Minirel_storage
open Minirel_query
open Ast

exception Error of string

let fail fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type bound = {
  spec : Template.spec;
  params : Instance.disjuncts array;
  signature : string;  (* canonical template identity *)
  distinct : bool;
  aggregates : (Ast.agg_fun * Template.attr_ref option) list;
      (* aggregate select items, in order; empty for plain queries *)
  group_by : Template.attr_ref list;
  order_by : (Template.attr_ref * bool) list;  (* attr, descending *)
  limit : int option;
}

(* Interval grids for interval-form selection attributes, keyed by
   (relation name, attribute name). *)
type grids = (string * string) * Discretize.t

let resolve_from catalog from =
  let relations = Array.of_list (List.map fst from) in
  Array.iter
    (fun rel ->
      if not (Minirel_index.Catalog.mem catalog rel) then fail "unknown relation %s" rel)
    relations;
  let alias_map = Hashtbl.create 8 in
  List.iteri
    (fun i (rel, alias) ->
      let add name =
        if Hashtbl.mem alias_map name then fail "ambiguous relation name or alias %s" name;
        Hashtbl.replace alias_map name i
      in
      add (match alias with Some a -> a | None -> rel);
      match alias with Some _ when not (Hashtbl.mem alias_map rel) -> add rel | _ -> ())
    from;
  (relations, alias_map)

let bind ?(grids : grids list = []) catalog (q : query) =
  let relations, alias_map = resolve_from catalog q.from in
  let schema_of i = Minirel_index.Catalog.schema catalog relations.(i) in
  let resolve (a : qattr) : Template.attr_ref =
    match Hashtbl.find_opt alias_map a.q_rel with
    | None -> fail "unknown relation or alias %s in %a" a.q_rel pp_qattr a
    | Some rel ->
        if not (Schema.mem (schema_of rel) a.q_attr) then
          fail "relation %s has no attribute %s" relations.(rel) a.q_attr;
        Template.attr_ref ~rel ~attr:a.q_attr
  in
  let local_pos (r : Template.attr_ref) =
    Schema.pos (schema_of r.Template.rel) r.Template.attr
  in
  (* SQL-style literal coercion: integer literals against a float
     column become floats; anything else must match the column type. *)
  let typed_value (r : Template.attr_ref) lit =
    let sch = schema_of r.Template.rel in
    let ty = Schema.attr_ty sch (local_pos r) in
    match (lit, ty) with
    | L_int i, Schema.Tfloat -> Value.Float (float_of_int i)
    | _ ->
        let v = lit_to_value lit in
        if Schema.ty_matches ty v then v
        else
          fail "literal %a has the wrong type for %s.%s" Value.pp v
            relations.(r.Template.rel) r.Template.attr
  in
  (* select list: plain attributes and aggregate items *)
  let aggregates = ref [] in
  let plain_select =
    List.concat_map
      (function
        | S_attr a -> [ resolve a ]
        | S_star ->
            List.concat
              (List.init (Array.length relations) (fun rel ->
                   let sch = schema_of rel in
                   List.init (Schema.arity sch) (fun i ->
                       Template.attr_ref ~rel ~attr:(Schema.attr_name sch i))))
        | S_agg (f, arg) ->
            (match (f, arg) with
            | F_count, None -> aggregates := (f, None) :: !aggregates
            | F_count, Some a | (F_min | F_max), Some a ->
                aggregates := (f, Some (resolve a)) :: !aggregates
            | (F_sum | F_avg), Some a ->
                let r = resolve a in
                (match Schema.attr_ty (schema_of r.Template.rel) (local_pos r) with
                | Schema.Tint | Schema.Tfloat -> ()
                | Schema.Tstr -> fail "sum/avg need a numeric column, %a is a string" pp_qattr a);
                aggregates := (f, Some r) :: !aggregates
            | (F_sum | F_avg | F_min | F_max), None ->
                fail "this aggregate needs an attribute argument");
            [])
      q.select
  in
  let aggregates = List.rev !aggregates in
  let group_by = List.map resolve q.group_by in
  let order_by = List.map (fun (a, desc) -> (resolve a, desc)) q.order_by in
  (* SQL grouping rules *)
  if aggregates <> [] && List.exists (fun a -> not (List.mem a group_by)) plain_select then
    fail "plain select attributes must appear in GROUP BY when aggregating";
  if group_by <> [] && aggregates = [] then
    fail "GROUP BY needs at least one aggregate in the select list";
  if q.distinct && aggregates <> [] then
    fail "DISTINCT cannot be combined with aggregates";
  (* the template's Ls must carry every attribute the shell reads back:
     plain attrs, group keys, aggregate arguments, order keys *)
  let agg_args = List.filter_map snd aggregates in
  let select_list =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun (a : Template.attr_ref) ->
        if Hashtbl.mem seen a then false
        else begin
          Hashtbl.replace seen a ();
          true
        end)
      (plain_select @ group_by @ agg_args @ List.map fst order_by)
  in
  let select_list =
    if select_list <> [] then select_list
    else
      (* e.g. a bare count star: fall back to the selection conditions'
         attributes, which always exist *)
      List.filter_map
        (function
          | W_group (atom :: _) -> (
              match atom with
              | A_cmp (a, _, _) | A_between (a, _, _) | A_in (a, _) -> Some (resolve a)
              | A_join _ -> None)
          | _ -> None)
        q.where
  in
  if select_list = [] then fail "nothing to select";
  (* Cjoin: plain atoms *)
  let joins = ref [] and fixed = ref [] in
  let plain_atom = function
    | A_join (a, b) ->
        let ra = resolve a and rb = resolve b in
        joins := (ra, rb) :: !joins
    | A_cmp (a, op, lit) ->
        let r = resolve a in
        let v = typed_value r lit in
        let cmp =
          match op with
          | Ceq -> Predicate.Eq
          | Cne -> Predicate.Ne
          | Clt -> Predicate.Lt
          | Cle -> Predicate.Le
          | Cgt -> Predicate.Gt
          | Cge -> Predicate.Ge
        in
        fixed := (r.Template.rel, Predicate.Cmp (cmp, local_pos r, v)) :: !fixed
    | A_between (a, lo, hi) ->
        let r = resolve a in
        fixed :=
          ( r.Template.rel,
            Predicate.In_interval
              (local_pos r, Interval.closed ~lo:(typed_value r lo) ~hi:(typed_value r hi)) )
          :: !fixed
    | A_in (a, lits) ->
        let r = resolve a in
        fixed :=
          (r.Template.rel, Predicate.In_set (local_pos r, List.map (typed_value r) lits))
          :: !fixed
  in
  (* Cselect: one parenthesised group = one Ci *)
  let grid_for (r : Template.attr_ref) =
    match List.assoc_opt (relations.(r.Template.rel), r.Template.attr) grids with
    | Some g -> g
    | None -> Discretize.of_cuts []  (* single full-domain basic interval *)
  in
  let atom_attr = function
    | A_join (a, _) -> fail "join condition %a = ... inside a selection group" pp_qattr a
    | A_cmp (a, _, _) | A_between (a, _, _) | A_in (a, _) -> a
  in
  let group_condition atoms =
    let attrs = List.map atom_attr atoms in
    let r =
      match attrs with
      | [] -> fail "empty selection group"
      | first :: rest ->
          let fr = resolve first in
          List.iter
            (fun a ->
              if resolve a <> fr then
                fail "a selection group must range over one attribute (saw %a and %a)"
                  pp_qattr first pp_qattr a)
            rest;
          fr
    in
    let values = ref [] and intervals = ref [] in
    let tv = typed_value r in
    List.iter
      (function
        | A_cmp (_, Ceq, lit) -> values := tv lit :: !values
        | A_in (_, lits) -> values := List.rev_map tv lits @ !values
        | A_between (_, lo, hi) ->
            intervals := Interval.closed ~lo:(tv lo) ~hi:(tv hi) :: !intervals
        | A_cmp (_, Clt, lit) -> intervals := Interval.below (tv lit) :: !intervals
        | A_cmp (_, Cle, lit) ->
            intervals :=
              Interval.make Interval.Neg_inf (Interval.U_incl (tv lit)) :: !intervals
        | A_cmp (_, Cgt, lit) ->
            intervals :=
              Interval.make (Interval.L_excl (tv lit)) Interval.Pos_inf :: !intervals
        | A_cmp (_, Cge, lit) -> intervals := Interval.at_least (tv lit) :: !intervals
        | A_cmp (_, Cne, _) -> fail "<> is not allowed in a selection group"
        | A_join _ -> assert false (* ruled out by atom_attr *))
      atoms;
    match (List.rev !values, List.rev !intervals) with
    | vs, [] -> (Template.Eq_sel r, Instance.Dvalues vs)
    | [], ivs -> (Template.Range_sel (r, grid_for r), Instance.Dintervals ivs)
    | _ -> fail "a selection group cannot mix equalities and ranges"
  in
  let selections = ref [] in
  List.iter
    (function
      | W_plain a -> plain_atom a
      | W_group atoms -> selections := group_condition atoms :: !selections)
    q.where;
  let selections = List.rev !selections in
  if selections = [] then
    fail "the query needs at least one parenthesised selection condition";
  let spec_selections = Array.of_list (List.map fst selections) in
  let params = Array.of_list (List.map snd selections) in
  (* canonical template identity: everything except the parameters *)
  let signature =
    let attr_sig (r : Template.attr_ref) = Fmt.str "%d.%s" r.Template.rel r.Template.attr in
    Fmt.str "from[%s]|join[%s]|fixed[%s]|sel[%s]|cs[%s]"
      (String.concat "," (Array.to_list relations))
      (String.concat ","
         (List.map (fun (a, b) -> attr_sig a ^ "=" ^ attr_sig b) (List.rev !joins)))
      (String.concat ","
         (List.map
            (fun (rel, p) -> Fmt.str "%d:%a" rel Predicate.pp p)
            (List.rev !fixed)))
      (String.concat "," (List.map attr_sig select_list))
      (String.concat ","
         (List.map
            (function
              | Template.Eq_sel r -> "eq:" ^ attr_sig r
              | Template.Range_sel (r, _) -> "rng:" ^ attr_sig r)
            (Array.to_list spec_selections)))
  in
  let spec =
    {
      Template.name = Fmt.str "sql_%08x" (Hashtbl.hash signature land 0xFFFFFFFF);
      relations;
      joins = List.rev !joins;
      fixed = List.rev !fixed;
      select_list;
      selections = spec_selections;
    }
  in
  { spec; params; signature; distinct = q.distinct; aggregates; group_by; order_by; limit = q.limit }
