(** Render a compiled template + instance back to SQL accepted by
    {!Parser} — the inverse of {!Binder}. *)

exception Unsupported of string

(** @raise Unsupported for shapes outside the grammar (Or/Not fixed
    predicates, bounded intervals open on an end, NULL literals);
    @raise Invalid_argument when relation names repeat in FROM. *)
val to_sql : Minirel_query.Instance.t -> string
