lib/sql/binder.mli: Ast Discretize Instance Minirel_index Minirel_query Template
