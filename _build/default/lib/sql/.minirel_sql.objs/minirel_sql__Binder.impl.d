lib/sql/binder.ml: Array Ast Discretize Fmt Hashtbl Instance Interval List Minirel_index Minirel_query Minirel_storage Predicate Schema String Template Value
