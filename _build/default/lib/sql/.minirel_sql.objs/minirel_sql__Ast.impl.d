lib/sql/ast.ml: Fmt Minirel_storage
