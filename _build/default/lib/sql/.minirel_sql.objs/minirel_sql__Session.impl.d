lib/sql/session.ml: Array Binder Discretize Hashtbl Instance List Minirel_index Minirel_query Minirel_storage Parser Template
