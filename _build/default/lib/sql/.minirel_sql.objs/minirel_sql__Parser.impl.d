lib/sql/parser.ml: Ast Fmt Lexer List Option String
