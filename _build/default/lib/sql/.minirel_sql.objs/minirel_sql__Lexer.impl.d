lib/sql/lexer.ml: Buffer Fmt List String
