lib/sql/lexer.mli:
