lib/sql/print.mli: Minirel_query
