lib/sql/print.ml: Array Fmt Instance Interval List Minirel_query Minirel_storage Predicate Printf Schema String Template Value
