lib/sql/session.mli: Binder Discretize Instance Minirel_index Minirel_query Template
