lib/workload/zipf.mli: Split_mix
