lib/workload/querygen.mli: Discretize Instance Interval Minirel_query Minirel_storage Split_mix Template Value Zipf
