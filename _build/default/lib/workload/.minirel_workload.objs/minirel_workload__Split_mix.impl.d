lib/workload/split_mix.ml: Array Hashtbl Int64 List
