lib/workload/querygen.ml: Array Discretize Hashtbl Instance Interval List Minirel_query Minirel_storage Split_mix Template Value Zipf
