lib/workload/tpcr.ml: Float Heap_file Minirel_index Minirel_storage Option Schema Split_mix String Value Zipf
