lib/workload/split_mix.mli:
