lib/workload/zipf.ml: Array Float Split_mix
