lib/workload/tpcr.mli: Minirel_index Minirel_storage Schema
