(** TPC-R-style data generator (the paper's Section 4.2 data, Table 1):
    customer / orders / lineitem with the paper's fanouts (10 orders
    per customer, 4 lineitems per order) and per-relation byte
    accounting. DESIGN.md Section 2 documents the deviations: domains
    scale with the data and customer nationkey is Zipf-skewed so hot
    basic condition parts keep more than F matching tuples. *)

open Minirel_storage

type params = {
  scale : float;  (** the paper's s *)
  seed : int;
  n_dates : int;  (** orderdate domain 1..n_dates *)
  n_suppliers : int;  (** suppkey domain 1..n_suppliers *)
  n_nations : int;  (** nationkey domain 0..n_nations-1 *)
  nation_alpha : float;  (** Zipf skew of customers across nations *)
  pad : bool;  (** padding strings realise Table 1 byte sizes *)
}

val default_params : params

(** Parameters whose selection-value domains scale with the data,
    targeting ~8 lineitems per (orderdate, suppkey) pair. *)
val params_for_scale : ?seed:int -> ?pad:bool -> float -> params

type counts = { customers : int; orders : int; lineitems : int }

(** Row counts implied by a scale factor (0.15M/1.5M/6M at s = 1). *)
val counts_of_scale : float -> counts

val customer_schema : Schema.t
val orders_schema : Schema.t
val lineitem_schema : Schema.t

(** Create and populate the three relations plus an index on every
    selection/join attribute (the paper's setup). *)
val generate : Minirel_index.Catalog.t -> params -> counts

type table1_row = {
  relation : string;
  tuples : int;
  nominal_mb : float;  (** the paper's formula: 23s / 114s / 755s MB *)
  actual_bytes : int option;  (** measured when a catalog is supplied *)
}

val table1 : ?catalog:Minirel_index.Catalog.t -> scale:float -> unit -> table1_row list
