lib/shell/shell.mli: Fmt Minirel_index Minirel_sql Minirel_storage Minirel_txn Pmv Tuple Value
