lib/shell/trace.mli: Minirel_sql Pmv Shell
