lib/shell/shell.ml: Array Fmt Int64 Interval List Minirel_exec Minirel_index Minirel_query Minirel_sql Minirel_storage Minirel_txn Option Pmv Predicate Schema String Template Tuple Value
