lib/shell/trace.ml: Fun List Minirel_sql Pmv Shell String
