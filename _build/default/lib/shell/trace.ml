(* Query traces: record the statements a shell executes, persist them,
   replay them elsewhere, and feed their SELECTs into the PMV advisor —
   the workflow the paper's Section 2.2 describes for MV advisors,
   adapted to PMVs. Statements are stored one per line (the grammar is
   single-line). *)

type t = { mutable rev_entries : string list; mutable n : int }

let create () = { rev_entries = []; n = 0 }

let record t sql =
  (* the grammar never spans lines; normalise just in case *)
  let flat = String.map (function '\n' | '\r' -> ' ' | c -> c) sql in
  t.rev_entries <- flat :: t.rev_entries;
  t.n <- t.n + 1

let entries t = List.rev t.rev_entries
let length t = t.n

(* Subscribe to a shell: every successfully executed statement lands in
   the trace. *)
let attach t shell = Shell.set_recorder shell (record t)

let save t ~filename =
  let oc = open_out filename in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun sql ->
          output_string oc sql;
          output_char oc '\n')
        (entries t))

let load ~filename =
  let ic = open_in filename in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let t = create () in
      let rec loop () =
        match input_line ic with
        | exception End_of_file -> ()
        | "" -> loop ()
        | line ->
            record t line;
            loop ()
      in
      loop ();
      t)

(* Replay every statement into a shell. Returns (executed, failed);
   failures (e.g. re-creating an existing table) are skipped. *)
let replay t shell =
  List.fold_left
    (fun (ok, failed) sql ->
      match Shell.exec shell sql with
      | _ -> (ok + 1, failed)
      | exception _ -> (ok, failed + 1))
    (0, 0) (entries t)

(* Feed the trace's SELECT statements into an advisor via a session
   (templates deduplicated by canonical signature as usual). Returns
   how many queries were observed. *)
let observe t session advisor =
  List.fold_left
    (fun observed sql ->
      match Minirel_sql.Parser.parse_statement sql with
      | Minirel_sql.Ast.St_select _ -> (
          match Minirel_sql.Session.query session sql with
          | _, instance ->
              Pmv.Advisor.observe advisor instance;
              observed + 1
          | exception _ -> observed)
      | _ -> observed
      | exception _ -> observed)
    0 (entries t)
