(** Query traces: record the statements a shell executes, persist and
    replay them, and feed their SELECTs to the PMV advisor — the
    Section 2.2 advisor workflow, adapted to PMVs. *)

type t

val create : unit -> t
val record : t -> string -> unit

(** Oldest first. *)
val entries : t -> string list

val length : t -> int

(** Record every statement the shell successfully executes. *)
val attach : t -> Shell.t -> unit

val save : t -> filename:string -> unit
val load : filename:string -> t

(** Replay every statement into a shell; returns (executed, failed).
    Failures are skipped, not raised. *)
val replay : t -> Shell.t -> int * int

(** Feed the trace's SELECTs into an advisor via a session; returns the
    number of queries observed. *)
val observe : t -> Minirel_sql.Session.t -> Pmv.Advisor.t -> int
