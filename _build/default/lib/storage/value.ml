(* Typed attribute values.

   The engine is deliberately small: integers (also used for dates,
   encoded as day numbers), floats, and strings, plus NULL. Values of
   different types are ordered by a fixed type rank so that composite
   index keys always have a total order. *)

type t = Null | Int of int | Float of float | Str of string

let rank = function Null -> 0 | Int _ -> 1 | Float _ -> 2 | Str _ -> 3

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Int x -> Hashtbl.hash x
  | Float x -> Hashtbl.hash x
  | Str x -> Hashtbl.hash x

(* Nominal on-disk footprint in bytes, used for sizing PMVs (the paper's
   [At]) and for Table 1's dataset-size accounting. *)
let size_bytes = function
  | Null -> 1
  | Int _ -> 8
  | Float _ -> 8
  | Str s -> 4 + String.length s

let pp ppf = function
  | Null -> Fmt.string ppf "NULL"
  | Int x -> Fmt.int ppf x
  | Float x -> Fmt.pf ppf "%g" x
  | Str s -> Fmt.pf ppf "%S" s

let to_string v = Fmt.str "%a" pp v

let int_exn = function
  | Int x -> x
  | v -> invalid_arg (Fmt.str "Value.int_exn: %a" pp v)

let str_exn = function
  | Str s -> s
  | v -> invalid_arg (Fmt.str "Value.str_exn: %a" pp v)

let float_exn = function
  | Float x -> x
  | v -> invalid_arg (Fmt.str "Value.float_exn: %a" pp v)

let is_null = function Null -> true | _ -> false
