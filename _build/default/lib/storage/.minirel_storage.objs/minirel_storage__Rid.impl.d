lib/storage/rid.ml: Fmt Int
