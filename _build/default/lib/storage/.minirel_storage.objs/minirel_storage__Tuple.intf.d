lib/storage/tuple.mli: Fmt Hashtbl Value
