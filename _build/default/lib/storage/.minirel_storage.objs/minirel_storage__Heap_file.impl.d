lib/storage/heap_file.ml: Array Buffer_pool Fmt Page Rid Schema Tuple
