lib/storage/page.ml: Array Tuple
