lib/storage/tuple.ml: Array Fmt Hashtbl Value
