lib/storage/value.mli: Fmt
