lib/storage/schema.ml: Array Fmt Hashtbl List Value
