lib/storage/rid.mli: Fmt
