lib/storage/schema.mli: Fmt Value
