lib/storage/heap_file.mli: Buffer_pool Rid Schema Tuple
