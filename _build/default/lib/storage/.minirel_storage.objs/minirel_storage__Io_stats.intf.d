lib/storage/io_stats.mli: Fmt
