lib/storage/buffer_pool.ml: Hashtbl Io_stats List Minirel_cache
