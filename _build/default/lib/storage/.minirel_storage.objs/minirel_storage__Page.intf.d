lib/storage/page.mli: Tuple
