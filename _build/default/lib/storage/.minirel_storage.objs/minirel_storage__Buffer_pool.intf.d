lib/storage/buffer_pool.mli: Io_stats Minirel_cache
