lib/storage/value.ml: Float Fmt Hashtbl Int String
