(* Heap files: a growable array of slotted pages holding one relation.
   Every page touch goes through the owning buffer pool so that scans,
   fetches and mutations are charged logical I/Os. *)

type t = {
  schema : Schema.t;
  slots_per_page : int;
  pool : Buffer_pool.t;
  file_id : int;
  mutable pages : Page.t array;  (* prefix [0, n_pages) is valid *)
  mutable n_pages : int;
  mutable with_space : int list;  (* pages known to have a free slot *)
  mutable n_tuples : int;
}

let default_slots_per_page = 64

let create ?(slots_per_page = default_slots_per_page) pool schema =
  if slots_per_page <= 0 then invalid_arg "Heap_file.create: slots_per_page";
  {
    schema;
    slots_per_page;
    pool;
    file_id = Buffer_pool.register_file pool;
    pages = [||];
    n_pages = 0;
    with_space = [];
    n_tuples = 0;
  }

let schema t = t.schema
let file_id t = t.file_id
let n_pages t = t.n_pages
let n_tuples t = t.n_tuples

let size_bytes t =
  let total = ref 0 in
  for p = 0 to t.n_pages - 1 do
    Page.iter t.pages.(p) (fun _ tuple -> total := !total + Tuple.size_bytes tuple)
  done;
  !total

let touch t page mode = Buffer_pool.access t.pool ~file:t.file_id ~page ~mode

let grow t =
  let id = t.n_pages in
  if id >= Array.length t.pages then begin
    let cap = max 8 (2 * Array.length t.pages) in
    let fresh =
      Array.init cap (fun i ->
          if i < t.n_pages then t.pages.(i)
          else Page.create ~id:i ~slots_per_page:t.slots_per_page)
    in
    t.pages <- fresh
  end;
  t.n_pages <- id + 1;
  id

(* Pop a page that still has room, allocating one if necessary. *)
let rec page_with_space t =
  match t.with_space with
  | p :: rest ->
      if Page.is_full t.pages.(p) then begin
        t.with_space <- rest;
        page_with_space t
      end
      else p
  | [] ->
      let p = grow t in
      t.with_space <- [ p ];
      p

let insert t tuple =
  if not (Schema.conforms t.schema tuple) then
    invalid_arg
      (Fmt.str "Heap_file.insert: tuple %a does not conform to %a" Tuple.pp tuple
         Schema.pp t.schema);
  let page = page_with_space t in
  let slot = Page.insert t.pages.(page) tuple in
  if Page.is_full t.pages.(page) then
    t.with_space <- (match t.with_space with _ :: rest -> rest | [] -> []);
  t.n_tuples <- t.n_tuples + 1;
  touch t page `Write;
  Rid.make ~page ~slot

let fetch t (rid : Rid.t) =
  if rid.Rid.page < 0 || rid.Rid.page >= t.n_pages then None
  else begin
    touch t rid.Rid.page `Read;
    Page.get t.pages.(rid.Rid.page) rid.Rid.slot
  end

(* @raise Not_found if the slot is empty or out of range. *)
let delete t (rid : Rid.t) =
  if rid.Rid.page < 0 || rid.Rid.page >= t.n_pages then raise Not_found;
  let page = t.pages.(rid.Rid.page) in
  let was_full = Page.is_full page in
  let tuple = Page.delete page rid.Rid.slot in
  if was_full then t.with_space <- rid.Rid.page :: t.with_space;
  t.n_tuples <- t.n_tuples - 1;
  touch t rid.Rid.page `Write;
  tuple

(* In-place update; schema-checked. @raise Not_found if slot empty. *)
let update t (rid : Rid.t) tuple =
  if not (Schema.conforms t.schema tuple) then
    invalid_arg "Heap_file.update: tuple does not conform to schema";
  if rid.Rid.page < 0 || rid.Rid.page >= t.n_pages then raise Not_found;
  Page.replace t.pages.(rid.Rid.page) rid.Rid.slot tuple;
  touch t rid.Rid.page `Write

(* Visit the live tuples of one page, charging a single read. *)
let iter_page t page f =
  if page < 0 || page >= t.n_pages then invalid_arg "Heap_file.iter_page";
  touch t page `Read;
  Page.iter t.pages.(page) (fun slot tuple -> f (Rid.make ~page ~slot) tuple)

(* Full scan in page order, charging a read per page. *)
let iter t f =
  for p = 0 to t.n_pages - 1 do
    touch t p `Read;
    Page.iter t.pages.(p) (fun slot tuple -> f (Rid.make ~page:p ~slot) tuple)
  done

let fold t f init =
  let acc = ref init in
  iter t (fun rid tuple -> acc := f !acc rid tuple);
  !acc
