(** A simulated buffer pool. Page contents stay in memory; the pool
    tracks which (file, page) pairs are resident under a pluggable
    replacement policy (CLOCK by default) and charges logical I/Os for
    the accesses that would have missed: reads on read misses, writes
    when dirty pages are evicted or flushed. A write miss admits the
    page without charging a read (it models an append). *)

type t

(** @raise Invalid_argument if [capacity <= 0]. *)
val create : ?policy:Minirel_cache.Policies.kind -> capacity:int -> unit -> t

val stats : t -> Io_stats.t
val capacity : t -> int

(** Number of currently resident pages. *)
val resident : t -> int

(** Allocate a fresh file id for a heap file or a simulated index file. *)
val register_file : t -> int

(** Record one page access, charging I/O on a miss and marking the page
    dirty on writes. *)
val access : t -> file:int -> page:int -> mode:[ `Read | `Write ] -> unit

(** Write back every dirty page (one write charge each). *)
val flush : t -> unit

(** Drop every resident page of [file] without write-back accounting;
    for relations rebuilt from scratch. *)
val invalidate_file : t -> file:int -> unit
