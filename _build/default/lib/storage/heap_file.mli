(** Heap files: a growable array of slotted pages holding one relation.
    Every page touch goes through the owning buffer pool, so scans,
    fetches and mutations are charged logical I/Os. *)

type t

val default_slots_per_page : int

(** @raise Invalid_argument if [slots_per_page <= 0]. *)
val create : ?slots_per_page:int -> Buffer_pool.t -> Schema.t -> t

val schema : t -> Schema.t
val file_id : t -> int
val n_pages : t -> int
val n_tuples : t -> int

(** Total nominal bytes of the live tuples (scans every page). *)
val size_bytes : t -> int

(** Insert into the first page with room, allocating one if needed.
    @raise Invalid_argument when the tuple does not conform to the
    schema. *)
val insert : t -> Tuple.t -> Rid.t

(** [None] when the rid's slot is free or out of range. *)
val fetch : t -> Rid.t -> Tuple.t option

(** Free the slot, returning its tuple. @raise Not_found if empty. *)
val delete : t -> Rid.t -> Tuple.t

(** In-place update, schema-checked. @raise Not_found if the slot is
    empty; @raise Invalid_argument on a non-conforming tuple. *)
val update : t -> Rid.t -> Tuple.t -> unit

(** Visit the live tuples of one page, charging a single read.
    @raise Invalid_argument on an out-of-range page. *)
val iter_page : t -> int -> (Rid.t -> Tuple.t -> unit) -> unit

(** Full scan in page order, charging one read per page. *)
val iter : t -> (Rid.t -> Tuple.t -> unit) -> unit

val fold : t -> ('a -> Rid.t -> Tuple.t -> 'a) -> 'a -> 'a
