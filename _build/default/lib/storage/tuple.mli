(** Tuples: immutable-by-convention arrays of values. Query results and
    PMV contents are multisets of these, so equality, hashing and
    comparison are structural and total. *)

type t = Value.t array

val arity : t -> int
val get : t -> int -> Value.t
val of_list : Value.t list -> t

val equal : t -> t -> bool

(** Lexicographic; shorter tuples order first on a common prefix. *)
val compare : t -> t -> int

val hash : t -> int

(** [project t positions] is the tuple of [t]'s values at [positions],
    in order. *)
val project : t -> int array -> t

val concat : t -> t -> t

(** Sum of the attribute footprints (see {!Value.size_bytes}). *)
val size_bytes : t -> int

val pp : t Fmt.t
val to_string : t -> string

module Key : Hashtbl.HashedType with type t = t

(** Hash tables keyed by tuples with structural value equality. *)
module Table : Hashtbl.S with type key = t
