(* Record identifiers: (page number, slot within page). *)

type t = { page : int; slot : int }

let make ~page ~slot = { page; slot }

let compare a b =
  let c = Int.compare a.page b.page in
  if c <> 0 then c else Int.compare a.slot b.slot

let equal a b = compare a b = 0

let hash t = (t.page * 1_000_003) + t.slot

let pp ppf t = Fmt.pf ppf "(%d,%d)" t.page t.slot
