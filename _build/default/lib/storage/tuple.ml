(* Tuples are immutable-by-convention arrays of values. Query results
   and PMV entries are multisets of these, so equality, hashing and
   comparison must be structural and total. *)

type t = Value.t array

let arity (t : t) = Array.length t

let get (t : t) i = t.(i)

let of_list = Array.of_list

let equal (a : t) (b : t) =
  Array.length a = Array.length b && Array.for_all2 Value.equal a b

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let hash (t : t) =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

(* Project onto the given positions, in order. *)
let project (t : t) positions = Array.map (fun i -> t.(i)) positions

let concat (a : t) (b : t) : t = Array.append a b

let size_bytes (t : t) =
  Array.fold_left (fun acc v -> acc + Value.size_bytes v) 0 t

let pp ppf (t : t) =
  Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ", ") Value.pp) t

let to_string t = Fmt.str "%a" pp t

(* Hashtbl over tuples with structural value equality (safe for floats
   as long as NaN is not used as data, which the generators never do). *)
module Key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Table = Hashtbl.Make (Key)
