(* A slotted page: a fixed number of slots, each either free or holding
   one tuple. Pages are the unit of buffer-pool residency and therefore
   the unit of simulated I/O. *)

type t = {
  id : int;
  slots : Tuple.t option array;
  mutable live : int;  (* occupied slots *)
}

let create ~id ~slots_per_page =
  if slots_per_page <= 0 then invalid_arg "Page.create: slots_per_page";
  { id; slots = Array.make slots_per_page None; live = 0 }

let capacity t = Array.length t.slots
let live t = t.live
let is_full t = t.live >= Array.length t.slots

let get t slot =
  if slot < 0 || slot >= Array.length t.slots then None else t.slots.(slot)

(* Store [tuple] in the first free slot. @raise Invalid_argument if full. *)
let insert t tuple =
  let rec find i =
    if i >= Array.length t.slots then invalid_arg "Page.insert: page full"
    else if t.slots.(i) = None then i
    else find (i + 1)
  in
  let slot = find 0 in
  t.slots.(slot) <- Some tuple;
  t.live <- t.live + 1;
  slot

(* Free the slot. Returns the tuple that was there. @raise Not_found *)
let delete t slot =
  match get t slot with
  | None -> raise Not_found
  | Some tuple ->
      t.slots.(slot) <- None;
      t.live <- t.live - 1;
      tuple

let replace t slot tuple =
  match get t slot with
  | None -> raise Not_found
  | Some _ -> t.slots.(slot) <- Some tuple

let iter t f =
  Array.iteri (fun slot -> function None -> () | Some tuple -> f slot tuple) t.slots
