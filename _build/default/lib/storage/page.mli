(** A slotted page: a fixed number of slots, each free or holding one
    tuple. Pages are the unit of buffer-pool residency and therefore
    the unit of simulated I/O. *)

type t

(** @raise Invalid_argument if [slots_per_page <= 0]. *)
val create : id:int -> slots_per_page:int -> t

val capacity : t -> int
val live : t -> int
val is_full : t -> bool

(** [None] when the slot is free or out of range. *)
val get : t -> int -> Tuple.t option

(** Store the tuple in the first free slot; returns the slot number.
    @raise Invalid_argument when the page is full. *)
val insert : t -> Tuple.t -> int

(** Free the slot, returning its tuple. @raise Not_found if empty. *)
val delete : t -> int -> Tuple.t

(** Overwrite an occupied slot. @raise Not_found if empty. *)
val replace : t -> int -> Tuple.t -> unit

(** Visit occupied slots in slot order. *)
val iter : t -> (int -> Tuple.t -> unit) -> unit
