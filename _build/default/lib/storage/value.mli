(** Typed attribute values: integers (also used for date day-numbers),
    floats, strings, and NULL. Values of different types are ordered by
    a fixed type rank so composite index keys always have a total
    order. *)

type t = Null | Int of int | Float of float | Str of string

(** Total order: within a type, the natural order; across types, the
    fixed rank Null < Int < Float < Str. *)
val compare : t -> t -> int

val equal : t -> t -> bool
val hash : t -> int

(** Nominal on-disk footprint in bytes: 8 for numbers, [4 + length] for
    strings, 1 for NULL. Used for PMV sizing (the paper's [At]) and
    Table 1 accounting. *)
val size_bytes : t -> int

val pp : t Fmt.t
val to_string : t -> string

(** @raise Invalid_argument when the value has a different type. *)
val int_exn : t -> int

(** @raise Invalid_argument when the value has a different type. *)
val str_exn : t -> string

(** @raise Invalid_argument when the value has a different type. *)
val float_exn : t -> float

val is_null : t -> bool
