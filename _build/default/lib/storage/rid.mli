(** Record identifiers: (page number, slot within page). *)

type t = { page : int; slot : int }

val make : page:int -> slot:int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : t Fmt.t
