(* A B+tree over composite keys ([Tuple.t], compared lexicographically)
   mapping each key to the multiset of RIDs holding it.

   Structure invariants (checked by [validate], exercised by qcheck):
   - every non-root node holds between [b] and [2b] keys (leaves) or
     between [b+1] and [2b+1] children (inner nodes);
   - all leaves are at the same depth and chained left-to-right;
   - inner separator keys strictly increase and bound their subtrees.

   Every node carries an id; [set_visit_hook] lets the executor charge a
   simulated page access per node touched on a root-to-leaf descent and
   per leaf visited by a range scan. *)

type key = Minirel_storage.Tuple.t

let key_compare = Minirel_storage.Tuple.compare

type node = Leaf of leaf | Inner of inner

and leaf = {
  mutable keys : key array;
  mutable rids : Minirel_storage.Rid.t list array;
  mutable nk : int;
  mutable next : leaf option;
  leaf_id : int;
}

and inner = {
  mutable seps : key array;  (* nk separators *)
  mutable children : node array;  (* nk + 1 children *)
  mutable nkeys : int;
  inner_id : int;
}

type t = {
  b : int;  (* minimum keys per non-root leaf; capacity is 2b *)
  mutable root : node;
  mutable n_keys : int;  (* distinct keys *)
  mutable n_entries : int;  (* total rids *)
  mutable next_id : int;
  mutable visit : int -> unit;
  mutable height : int;
}

let default_b = 16

let node_id = function Leaf l -> l.leaf_id | Inner n -> n.inner_id

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let dummy_key : key = [||]

(* Placeholder for unused child slots; never read. *)
let dummy_leaf : leaf =
  { keys = [||]; rids = [||]; nk = 0; next = None; leaf_id = -1 }

let new_leaf t =
  {
    keys = Array.make ((2 * t.b) + 1) dummy_key;
    rids = Array.make ((2 * t.b) + 1) [];
    nk = 0;
    next = None;
    leaf_id = fresh_id t;
  }

let new_inner t =
  {
    seps = Array.make ((2 * t.b) + 1) dummy_key;
    children = Array.make ((2 * t.b) + 2) (Leaf dummy_leaf);
    nkeys = 0;
    inner_id = fresh_id t;
  }

let create ?(b = default_b) () =
  if b < 2 then invalid_arg "Btree.create: b must be >= 2";
  let t =
    {
      b;
      root = Leaf { keys = [||]; rids = [||]; nk = 0; next = None; leaf_id = 0 };
      n_keys = 0;
      n_entries = 0;
      next_id = 0;
      visit = ignore;
      height = 1;
    }
  in
  t.root <- Leaf (new_leaf t);
  t

let set_visit_hook t f = t.visit <- f
let n_keys t = t.n_keys
let n_entries t = t.n_entries
let height t = t.height

(* Number of allocated node ids; an over-approximation of live nodes,
   good enough for sizing a simulated index file. *)
let n_node_ids t = t.next_id

(* Index of the first key in [keys[0..nk)] that is >= [k], or [nk]. *)
let lower_bound keys nk k =
  let lo = ref 0 and hi = ref nk in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if key_compare keys.(mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Child to descend into for key [k]: first separator > k decides. *)
let child_index inner k =
  let lo = ref 0 and hi = ref inner.nkeys in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if key_compare inner.seps.(mid) k <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let rec descend t node k =
  t.visit (node_id node);
  match node with
  | Leaf l -> l
  | Inner n -> descend t n.children.(child_index n k) k

let find t k =
  let l = descend t t.root k in
  let i = lower_bound l.keys l.nk k in
  if i < l.nk && key_compare l.keys.(i) k = 0 then l.rids.(i) else []

let mem t k = find t k <> []

(* --- insertion --- *)

type split = (key * node) option  (* separator, new right sibling *)

let leaf_insert_at l i k rid =
  for j = l.nk downto i + 1 do
    l.keys.(j) <- l.keys.(j - 1);
    l.rids.(j) <- l.rids.(j - 1)
  done;
  l.keys.(i) <- k;
  l.rids.(i) <- [ rid ];
  l.nk <- l.nk + 1

let split_leaf t l =
  let right = new_leaf t in
  let half = l.nk / 2 in
  let moved = l.nk - half in
  Array.blit l.keys half right.keys 0 moved;
  Array.blit l.rids half right.rids 0 moved;
  (* clear moved slots so stale keys cannot alias live data *)
  Array.fill l.keys half moved dummy_key;
  Array.fill l.rids half moved [];
  right.nk <- moved;
  l.nk <- half;
  right.next <- l.next;
  l.next <- Some right;
  (right.keys.(0), Leaf right)

let inner_insert_at n i sep child =
  for j = n.nkeys downto i + 1 do
    n.seps.(j) <- n.seps.(j - 1)
  done;
  for j = n.nkeys + 1 downto i + 2 do
    n.children.(j) <- n.children.(j - 1)
  done;
  n.seps.(i) <- sep;
  n.children.(i + 1) <- child;
  n.nkeys <- n.nkeys + 1

let split_inner t n =
  let right = new_inner t in
  let mid = n.nkeys / 2 in
  let sep = n.seps.(mid) in
  let moved = n.nkeys - mid - 1 in
  Array.blit n.seps (mid + 1) right.seps 0 moved;
  Array.blit n.children (mid + 1) right.children 0 (moved + 1);
  right.nkeys <- moved;
  Array.fill n.seps mid (n.nkeys - mid) dummy_key;
  n.nkeys <- mid;
  (sep, Inner right)

let rec insert_node t node k rid : split =
  match node with
  | Leaf l ->
      let i = lower_bound l.keys l.nk k in
      if i < l.nk && key_compare l.keys.(i) k = 0 then begin
        l.rids.(i) <- rid :: l.rids.(i);
        None
      end
      else begin
        leaf_insert_at l i k rid;
        t.n_keys <- t.n_keys + 1;
        if l.nk > 2 * t.b then Some (split_leaf t l) else None
      end
  | Inner n -> (
      let ci = child_index n k in
      match insert_node t n.children.(ci) k rid with
      | None -> None
      | Some (sep, right) ->
          inner_insert_at n ci sep right;
          if n.nkeys > 2 * t.b then Some (split_inner t n) else None)

let insert t k rid =
  t.n_entries <- t.n_entries + 1;
  match insert_node t t.root k rid with
  | None -> ()
  | Some (sep, right) ->
      let root = new_inner t in
      root.seps.(0) <- sep;
      root.children.(0) <- t.root;
      root.children.(1) <- right;
      root.nkeys <- 1;
      t.root <- Inner root;
      t.height <- t.height + 1

(* --- deletion --- *)

let leaf_remove_at l i =
  for j = i to l.nk - 2 do
    l.keys.(j) <- l.keys.(j + 1);
    l.rids.(j) <- l.rids.(j + 1)
  done;
  l.keys.(l.nk - 1) <- dummy_key;
  l.rids.(l.nk - 1) <- [];
  l.nk <- l.nk - 1

let inner_remove_at n i =
  (* removes separator i and child i+1 *)
  for j = i to n.nkeys - 2 do
    n.seps.(j) <- n.seps.(j + 1)
  done;
  for j = i + 1 to n.nkeys - 1 do
    n.children.(j) <- n.children.(j + 1)
  done;
  n.seps.(n.nkeys - 1) <- dummy_key;
  n.nkeys <- n.nkeys - 1

let node_underflow t = function
  | Leaf l -> l.nk < t.b
  | Inner n -> n.nkeys < t.b

(* Rebalance child [ci] of [parent], which just underflowed. *)
let fix_child t parent ci =
  let left_sib = if ci > 0 then Some (ci - 1) else None in
  let right_sib = if ci < parent.nkeys then Some (ci + 1) else None in
  let child = parent.children.(ci) in
  match (child, left_sib, right_sib) with
  | Leaf l, Some li, _ when (match parent.children.(li) with
                             | Leaf s -> s.nk > t.b
                             | Inner _ -> false) -> (
      (* borrow rightmost entry from the left leaf sibling *)
      match parent.children.(li) with
      | Leaf s ->
          leaf_insert_at l 0 s.keys.(s.nk - 1) (Minirel_storage.Rid.make ~page:0 ~slot:0);
          l.rids.(0) <- s.rids.(s.nk - 1);
          leaf_remove_at s (s.nk - 1);
          parent.seps.(li) <- l.keys.(0)
      | Inner _ -> assert false)
  | Leaf l, _, Some ri when (match parent.children.(ri) with
                             | Leaf s -> s.nk > t.b
                             | Inner _ -> false) -> (
      match parent.children.(ri) with
      | Leaf s ->
          leaf_insert_at l l.nk s.keys.(0) (Minirel_storage.Rid.make ~page:0 ~slot:0);
          l.rids.(l.nk - 1) <- s.rids.(0);
          leaf_remove_at s 0;
          parent.seps.(ci) <- s.keys.(0)
      | Inner _ -> assert false)
  | Leaf l, Some li, _ -> (
      (* merge into the left leaf sibling *)
      match parent.children.(li) with
      | Leaf s ->
          Array.blit l.keys 0 s.keys s.nk l.nk;
          Array.blit l.rids 0 s.rids s.nk l.nk;
          s.nk <- s.nk + l.nk;
          s.next <- l.next;
          inner_remove_at parent li
      | Inner _ -> assert false)
  | Leaf l, None, Some ri -> (
      (* merge the right leaf sibling into this leaf *)
      match parent.children.(ri) with
      | Leaf s ->
          Array.blit s.keys 0 l.keys l.nk s.nk;
          Array.blit s.rids 0 l.rids l.nk s.nk;
          l.nk <- l.nk + s.nk;
          l.next <- s.next;
          inner_remove_at parent ci
      | Inner _ -> assert false)
  | Leaf _, None, None -> ()  (* root leaf; nothing to do *)
  | Inner n, Some li, _ when (match parent.children.(li) with
                              | Inner s -> s.nkeys > t.b
                              | Leaf _ -> false) -> (
      match parent.children.(li) with
      | Inner s ->
          (* rotate right through the parent separator *)
          for j = n.nkeys downto 1 do
            n.seps.(j) <- n.seps.(j - 1)
          done;
          for j = n.nkeys + 1 downto 1 do
            n.children.(j) <- n.children.(j - 1)
          done;
          n.seps.(0) <- parent.seps.(li);
          n.children.(0) <- s.children.(s.nkeys);
          n.nkeys <- n.nkeys + 1;
          parent.seps.(li) <- s.seps.(s.nkeys - 1);
          s.seps.(s.nkeys - 1) <- dummy_key;
          s.nkeys <- s.nkeys - 1
      | Leaf _ -> assert false)
  | Inner n, _, Some ri when (match parent.children.(ri) with
                              | Inner s -> s.nkeys > t.b
                              | Leaf _ -> false) -> (
      match parent.children.(ri) with
      | Inner s ->
          (* rotate left through the parent separator *)
          n.seps.(n.nkeys) <- parent.seps.(ci);
          n.children.(n.nkeys + 1) <- s.children.(0);
          n.nkeys <- n.nkeys + 1;
          parent.seps.(ci) <- s.seps.(0);
          for j = 0 to s.nkeys - 2 do
            s.seps.(j) <- s.seps.(j + 1)
          done;
          for j = 0 to s.nkeys - 1 do
            s.children.(j) <- s.children.(j + 1)
          done;
          s.seps.(s.nkeys - 1) <- dummy_key;
          s.nkeys <- s.nkeys - 1
      | Leaf _ -> assert false)
  | Inner n, Some li, _ -> (
      (* merge into left inner sibling, pulling the separator down *)
      match parent.children.(li) with
      | Inner s ->
          s.seps.(s.nkeys) <- parent.seps.(li);
          Array.blit n.seps 0 s.seps (s.nkeys + 1) n.nkeys;
          Array.blit n.children 0 s.children (s.nkeys + 1) (n.nkeys + 1);
          s.nkeys <- s.nkeys + 1 + n.nkeys;
          inner_remove_at parent li
      | Leaf _ -> assert false)
  | Inner n, None, Some ri -> (
      match parent.children.(ri) with
      | Inner s ->
          n.seps.(n.nkeys) <- parent.seps.(ci);
          Array.blit s.seps 0 n.seps (n.nkeys + 1) s.nkeys;
          Array.blit s.children 0 n.children (n.nkeys + 1) (s.nkeys + 1);
          n.nkeys <- n.nkeys + 1 + s.nkeys;
          inner_remove_at parent ci
      | Leaf _ -> assert false)
  | Inner _, None, None -> ()

(* Remove one occurrence of [rid] under [k]. Returns true if removed. *)
let rec delete_node t node k rid =
  match node with
  | Leaf l ->
      let i = lower_bound l.keys l.nk k in
      if i < l.nk && key_compare l.keys.(i) k = 0 then begin
        let rec remove_one = function
          | [] -> None
          | r :: rest ->
              if Minirel_storage.Rid.equal r rid then Some rest
              else Option.map (fun rest' -> r :: rest') (remove_one rest)
        in
        match remove_one l.rids.(i) with
        | None -> false
        | Some [] ->
            leaf_remove_at l i;
            t.n_keys <- t.n_keys - 1;
            t.n_entries <- t.n_entries - 1;
            true
        | Some rest ->
            l.rids.(i) <- rest;
            t.n_entries <- t.n_entries - 1;
            true
      end
      else false
  | Inner n ->
      let ci = child_index n k in
      let removed = delete_node t n.children.(ci) k rid in
      if removed && node_underflow t n.children.(ci) then fix_child t n ci;
      removed

let delete t k rid =
  let removed = delete_node t t.root k rid in
  (match t.root with
  | Inner n when n.nkeys = 0 ->
      t.root <- n.children.(0);
      t.height <- t.height - 1
  | Inner _ | Leaf _ -> ());
  removed

(* Remove a key with all its rids. Returns how many entries went away. *)
let delete_all t k =
  let rec loop acc =
    match find t k with
    | [] -> acc
    | rid :: _ -> if delete t k rid then loop (acc + 1) else acc
  in
  loop 0

(* --- bulk loading --- *)

(* Group sizes for packing [n] items into chunks of at most [fanout],
   each chunk at least [min_size] (assuming n >= min_size or a single
   chunk): full chunks, with the trailing two rebalanced when the last
   would underflow. Requires fanout + 1 >= 2 * min_size. *)
let chunk_sizes ~n ~fanout ~min_size =
  let k = (n + fanout - 1) / fanout in
  let sizes = Array.make k fanout in
  sizes.(k - 1) <- n - (fanout * (k - 1));
  if k >= 2 && sizes.(k - 1) < min_size then begin
    let combined = sizes.(k - 2) + sizes.(k - 1) in
    sizes.(k - 1) <- combined / 2;
    sizes.(k - 2) <- combined - (combined / 2)
  end;
  sizes

(* Build a tree from (key, rids) pairs sorted by strictly increasing
   key, packing nodes full and stacking parent levels bottom-up — the
   standard bulk-load, used to backfill indexes over existing relations
   much faster than repeated inserts.
   @raise Invalid_argument when keys are not strictly increasing or a
   rid list is empty. *)
let bulk_load ?(b = default_b) pairs =
  let t = create ~b () in
  let pairs = Array.of_list pairs in
  let n = Array.length pairs in
  if n = 0 then t
  else begin
    Array.iteri
      (fun i (k, rids) ->
        if i > 0 && key_compare (fst pairs.(i - 1)) k >= 0 then
          invalid_arg "Btree.bulk_load: keys must be strictly increasing";
        if rids = [] then invalid_arg "Btree.bulk_load: empty rid list";
        t.n_keys <- t.n_keys + 1;
        t.n_entries <- t.n_entries + List.length rids)
      pairs;
    (* leaf level: full leaves of 2b keys, trailing pair rebalanced *)
    let sizes = chunk_sizes ~n ~fanout:(2 * t.b) ~min_size:t.b in
    let pos = ref 0 in
    let leaves =
      Array.map
        (fun size ->
          let l = new_leaf t in
          for i = 0 to size - 1 do
            let k, rids = pairs.(!pos + i) in
            l.keys.(i) <- k;
            l.rids.(i) <- rids
          done;
          l.nk <- size;
          pos := !pos + size;
          l)
        sizes
    in
    for i = 0 to Array.length leaves - 2 do
      leaves.(i).next <- Some leaves.(i + 1)
    done;
    let first_key node =
      let rec go = function Leaf l -> l.keys.(0) | Inner n -> go n.children.(0) in
      go node
    in
    (* inner levels: full nodes of 2b+1 children, trailing pair
       rebalanced (fanout + 1 = 2b + 2 >= 2 * (b + 1)) *)
    let rec build_level (nodes : node array) height =
      if Array.length nodes = 1 then begin
        t.root <- nodes.(0);
        t.height <- height
      end
      else begin
        let sizes =
          chunk_sizes ~n:(Array.length nodes) ~fanout:((2 * t.b) + 1) ~min_size:(t.b + 1)
        in
        let pos = ref 0 in
        let parents =
          Array.map
            (fun size ->
              let inner = new_inner t in
              for i = 0 to size - 1 do
                inner.children.(i) <- nodes.(!pos + i);
                if i > 0 then inner.seps.(i - 1) <- first_key nodes.(!pos + i)
              done;
              inner.nkeys <- size - 1;
              pos := !pos + size;
              Inner inner)
            sizes
        in
        build_level parents (height + 1)
      end
    in
    build_level (Array.map (fun l -> Leaf l) leaves) 1;
    t
  end

(* --- range scans --- *)

let leftmost_leaf t =
  let rec go node =
    t.visit (node_id node);
    match node with Leaf l -> l | Inner n -> go n.children.(0)
  in
  go t.root

type bound = Unbounded | Inclusive of key | Exclusive of key

let above_lower bound k =
  match bound with
  | Unbounded -> true
  | Inclusive b -> key_compare k b >= 0
  | Exclusive b -> key_compare k b > 0

let below_upper bound k =
  match bound with
  | Unbounded -> true
  | Inclusive b -> key_compare k b <= 0
  | Exclusive b -> key_compare k b < 0

(* Iterate keys in [lo, hi] in order, calling [f key rids]. Charges a
   visit per node on the initial descent and per leaf traversed. *)
let range t ~lo ~hi f =
  let start =
    match lo with
    | Unbounded -> leftmost_leaf t
    | Inclusive k | Exclusive k -> descend t t.root k
  in
  let rec walk (l : leaf) =
    let continue_ = ref true in
    let i = ref 0 in
    while !continue_ && !i < l.nk do
      let k = l.keys.(!i) in
      if not (below_upper hi k) then continue_ := false
      else begin
        if above_lower lo k then f k l.rids.(!i);
        incr i
      end
    done;
    if !continue_ then
      match l.next with
      | Some next ->
          t.visit next.leaf_id;
          walk next
      | None -> ()
  in
  walk start

let iter t f = range t ~lo:Unbounded ~hi:Unbounded f

let to_list t =
  let acc = ref [] in
  iter t (fun k rids -> acc := (k, rids) :: !acc);
  List.rev !acc

(* --- invariant checking (for tests) --- *)

exception Invalid of string

let validate t =
  let fail fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt in
  let leaf_depths = ref [] in
  let rec check node ~is_root ~lo ~hi ~depth =
    match node with
    | Leaf l ->
        if (not is_root) && l.nk < t.b then fail "leaf underflow (%d < %d)" l.nk t.b;
        if l.nk > 2 * t.b then fail "leaf overflow";
        for i = 0 to l.nk - 1 do
          if l.rids.(i) = [] then fail "empty rid list";
          if i > 0 && key_compare l.keys.(i - 1) l.keys.(i) >= 0 then
            fail "leaf keys not strictly increasing";
          if not (above_lower lo l.keys.(i)) then fail "leaf key below lower bound";
          if not (below_upper hi l.keys.(i)) then fail "leaf key above upper bound"
        done;
        leaf_depths := depth :: !leaf_depths
    | Inner n ->
        if (not is_root) && n.nkeys < t.b then fail "inner underflow";
        if is_root && n.nkeys < 1 then fail "empty inner root";
        if n.nkeys > 2 * t.b then fail "inner overflow";
        for i = 0 to n.nkeys - 1 do
          if i > 0 && key_compare n.seps.(i - 1) n.seps.(i) >= 0 then
            fail "separators not strictly increasing"
        done;
        for i = 0 to n.nkeys do
          let lo' = if i = 0 then lo else Inclusive n.seps.(i - 1) in
          let hi' = if i = n.nkeys then hi else Exclusive n.seps.(i) in
          check n.children.(i) ~is_root:false ~lo:lo' ~hi:hi' ~depth:(depth + 1)
        done
  in
  check t.root ~is_root:true ~lo:Unbounded ~hi:Unbounded ~depth:1;
  (match !leaf_depths with
  | [] -> fail "tree has no leaves"
  | d :: rest ->
      if not (List.for_all (Int.equal d) rest) then fail "leaves at unequal depths";
      if d <> t.height then fail "height mismatch: %d vs recorded %d" d t.height);
  (* leaf chain must visit every key in order *)
  let count = ref 0 and entries = ref 0 in
  let last = ref None in
  iter t (fun k rids ->
      (match !last with
      | Some prev when key_compare prev k >= 0 -> fail "leaf chain out of order"
      | _ -> ());
      last := Some k;
      incr count;
      entries := !entries + List.length rids);
  if !count <> t.n_keys then fail "n_keys mismatch: chain %d vs %d" !count t.n_keys;
  if !entries <> t.n_entries then
    fail "n_entries mismatch: chain %d vs %d" !entries t.n_entries
