(** Unified secondary-index interface over one or more key attributes
    of a relation. The index maps the projection of each tuple onto
    [key_positions] to the tuple's RID. *)

type kind = Btree_kind | Hash_kind

type t

(** [prefill] backfills the index at creation: B-trees are bulk-loaded,
    hash indexes filled by insertion. *)
val create :
  ?kind:kind ->
  ?prefill:(Minirel_storage.Tuple.t * Minirel_storage.Rid.t) list ->
  name:string ->
  key_positions:int array ->
  file_id:int ->
  unit ->
  t

val name : t -> string
val key_positions : t -> int array
val file_id : t -> int
val kind : t -> kind
val key_of_tuple : t -> Minirel_storage.Tuple.t -> Minirel_storage.Tuple.t

(** Route simulated node/bucket visits into the buffer pool under this
    index's file id. *)
val attach_pool : t -> Minirel_storage.Buffer_pool.t -> unit

val insert : t -> Minirel_storage.Tuple.t -> Minirel_storage.Rid.t -> unit

(** Remove one (key-of-tuple, rid) entry; [false] if absent. *)
val delete : t -> Minirel_storage.Tuple.t -> Minirel_storage.Rid.t -> bool

val find : t -> Minirel_storage.Tuple.t -> Minirel_storage.Rid.t list

(** Range scan in key order; B-tree indexes only.
    @raise Invalid_argument on hash indexes. *)
val range :
  t ->
  lo:Btree.bound ->
  hi:Btree.bound ->
  (Btree.key -> Minirel_storage.Rid.t list -> unit) ->
  unit

val n_entries : t -> int

(** Structural self-check (B-tree invariants; no-op for hash indexes).
    @raise Btree.Invalid on violation. *)
val validate : t -> unit
