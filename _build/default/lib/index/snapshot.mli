(** Save and load catalog contents (schemas, tuples, index definitions)
    as a line-oriented text format, so generated datasets and
    experiment states can be reproduced without regenerating them. *)

exception Corrupt of string

(** Tagged, escape-safe value text (i/f/s/n prefix); shared with the
    redo log. *)
val encode_value : Minirel_storage.Value.t -> string

(** @raise Corrupt on malformed input. *)
val decode_value : string -> Minirel_storage.Value.t

(** Write the whole catalog; deterministic relation order. *)
val save : Catalog.t -> filename:string -> unit

(** Load a snapshot into a fresh catalog backed by [pool]; indexes are
    rebuilt from the loaded tuples.
    @raise Corrupt on malformed input. *)
val load : pool:Minirel_storage.Buffer_pool.t -> filename:string -> Catalog.t
