lib/index/snapshot.ml: Array Catalog Fmt Fun Heap_file Index List Minirel_storage Printf Scanf Schema String Value
