lib/index/index.ml: Btree Hash_index List Minirel_storage
