lib/index/btree.mli: Minirel_storage
