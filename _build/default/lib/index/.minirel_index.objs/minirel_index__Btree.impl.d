lib/index/btree.ml: Array Fmt Int List Minirel_storage Option
