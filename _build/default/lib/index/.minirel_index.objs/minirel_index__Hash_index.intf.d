lib/index/hash_index.mli: Minirel_storage
