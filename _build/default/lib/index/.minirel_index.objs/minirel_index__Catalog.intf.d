lib/index/catalog.mli: Index Minirel_storage
