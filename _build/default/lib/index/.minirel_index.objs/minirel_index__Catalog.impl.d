lib/index/catalog.ml: Array Btree Fmt Hashtbl Index List Minirel_storage
