lib/index/index.mli: Btree Minirel_storage
