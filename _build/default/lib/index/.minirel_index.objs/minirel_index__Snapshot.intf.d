lib/index/snapshot.mli: Catalog Minirel_storage
