lib/index/hash_index.ml: List Minirel_storage Option
