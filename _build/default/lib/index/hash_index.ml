(* Equality-only hash index: composite key -> RID multiset. Lookups are
   charged as a single simulated page visit (one bucket). *)

module Tbl = Minirel_storage.Tuple.Table

type t = {
  tbl : Minirel_storage.Rid.t list Tbl.t;
  mutable n_entries : int;
  mutable visit : int -> unit;
  n_buckets : int;  (* simulated bucket-page count for I/O charging *)
}

let create ?(n_buckets = 1024) () =
  { tbl = Tbl.create 4096; n_entries = 0; visit = ignore; n_buckets }

let set_visit_hook t f = t.visit <- f

let bucket_of t key = Minirel_storage.Tuple.hash key mod t.n_buckets

let insert t key rid =
  t.visit (bucket_of t key);
  let cur = Option.value ~default:[] (Tbl.find_opt t.tbl key) in
  Tbl.replace t.tbl key (rid :: cur);
  t.n_entries <- t.n_entries + 1

let find t key =
  t.visit (bucket_of t key);
  Option.value ~default:[] (Tbl.find_opt t.tbl key)

let delete t key rid =
  t.visit (bucket_of t key);
  match Tbl.find_opt t.tbl key with
  | None -> false
  | Some rids ->
      let removed = ref false in
      let rest =
        List.filter
          (fun r ->
            if (not !removed) && Minirel_storage.Rid.equal r rid then begin
              removed := true;
              false
            end
            else true)
          rids
      in
      if !removed then begin
        (match rest with [] -> Tbl.remove t.tbl key | _ -> Tbl.replace t.tbl key rest);
        t.n_entries <- t.n_entries - 1
      end;
      !removed

let n_keys t = Tbl.length t.tbl
let n_entries t = t.n_entries

let iter t f = Tbl.iter f t.tbl
