(** A B+tree over composite keys ([Tuple.t], compared lexicographically)
    mapping each key to the multiset of RIDs holding it. Supports
    duplicates, range scans over a chained leaf level, and full delete
    rebalancing (borrow/merge).

    Every node carries an id; [set_visit_hook] lets the executor charge
    a simulated page access per node touched on a root-to-leaf descent
    and per leaf walked by a range scan. *)

type key = Minirel_storage.Tuple.t

type t

(** [create ~b ()] builds an empty tree where every non-root node holds
    between [b] and [2b] keys. @raise Invalid_argument if [b < 2]. *)
val create : ?b:int -> unit -> t

val default_b : int

val set_visit_hook : t -> (int -> unit) -> unit

(** Number of distinct keys. *)
val n_keys : t -> int

(** Total number of (key, rid) entries. *)
val n_entries : t -> int

val height : t -> int

(** Allocated node ids; an over-approximation of live nodes, good
    enough for sizing a simulated index file. *)
val n_node_ids : t -> int

(** All rids stored under the key ([[]] when absent). *)
val find : t -> key -> Minirel_storage.Rid.t list

val mem : t -> key -> bool

val insert : t -> key -> Minirel_storage.Rid.t -> unit

(** Build a tree from (key, rids) pairs sorted by strictly increasing
    key, packing nodes full — much faster than repeated inserts when
    backfilling an index over an existing relation.
    @raise Invalid_argument on unsorted keys or empty rid lists. *)
val bulk_load : ?b:int -> (key * Minirel_storage.Rid.t list) list -> t

(** Remove one occurrence of the rid under the key; [false] if absent. *)
val delete : t -> key -> Minirel_storage.Rid.t -> bool

(** Remove a key with all its rids; returns how many entries went away. *)
val delete_all : t -> key -> int

type bound = Unbounded | Inclusive of key | Exclusive of key

(** [range t ~lo ~hi f] visits every key in the bound range in
    ascending order with its rid list. *)
val range : t -> lo:bound -> hi:bound -> (key -> Minirel_storage.Rid.t list -> unit) -> unit

val iter : t -> (key -> Minirel_storage.Rid.t list -> unit) -> unit
val to_list : t -> (key * Minirel_storage.Rid.t list) list

exception Invalid of string

(** Check every structural invariant (occupancy bounds, ordered
    separators, equal leaf depths, chain completeness, counters).
    @raise Invalid describing the first violation. *)
val validate : t -> unit
