(** Equality-only hash index: composite key -> RID multiset. Lookups
    are charged as a single simulated bucket-page visit. *)

type t

val create : ?n_buckets:int -> unit -> t
val set_visit_hook : t -> (int -> unit) -> unit
val insert : t -> Minirel_storage.Tuple.t -> Minirel_storage.Rid.t -> unit

(** All rids stored under the key ([[]] when absent). *)
val find : t -> Minirel_storage.Tuple.t -> Minirel_storage.Rid.t list

(** Remove one occurrence; [false] if absent. *)
val delete : t -> Minirel_storage.Tuple.t -> Minirel_storage.Rid.t -> bool

val n_keys : t -> int
val n_entries : t -> int
val iter : t -> (Minirel_storage.Tuple.t -> Minirel_storage.Rid.t list -> unit) -> unit
