(* Save and load catalog contents as a line-oriented text format, so
   generated datasets (and experiment states) can be reproduced without
   regenerating them:

     relation <name>
     attr <name> <int|float|string>
     tuple <v1>\t<v2>\t...
     index <rel> <name> <btree|hash> <attr1> <attr2> ...

   Values are tagged (i/f/s/n) and strings are OCaml-escaped, which
   keeps the format tab- and newline-safe. *)

open Minirel_storage

exception Corrupt of string

let fail fmt = Fmt.kstr (fun s -> raise (Corrupt s)) fmt

let encode_value = function
  | Value.Null -> "n"
  | Value.Int i -> "i" ^ string_of_int i
  | Value.Float f ->
      (* round-trippable float text *)
      "f" ^ Printf.sprintf "%h" f
  | Value.Str s -> "s" ^ String.escaped s

let decode_value s =
  if String.length s = 0 then fail "empty value field";
  let payload = String.sub s 1 (String.length s - 1) in
  match s.[0] with
  | 'n' -> Value.Null
  | 'i' -> (
      match int_of_string_opt payload with
      | Some i -> Value.Int i
      | None -> fail "bad int %S" payload)
  | 'f' -> (
      match float_of_string_opt payload with
      | Some f -> Value.Float f
      | None -> fail "bad float %S" payload)
  | 's' -> (
      match Scanf.unescaped payload with
      | v -> Value.Str v
      | exception Scanf.Scan_failure _ -> fail "bad string %S" payload)
  | c -> fail "unknown value tag %C" c

let ty_to_text = function
  | Schema.Tint -> "int"
  | Schema.Tfloat -> "float"
  | Schema.Tstr -> "string"

let ty_of_text = function
  | "int" -> Schema.Tint
  | "float" -> Schema.Tfloat
  | "string" -> Schema.Tstr
  | other -> fail "unknown type %S" other

(* Write the whole catalog to [filename]. Relation order is
   alphabetical so snapshots are deterministic. *)
let save catalog ~filename =
  let oc = open_out filename in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let rels = List.sort String.compare (Catalog.relations catalog) in
      List.iter
        (fun rel ->
          let heap = Catalog.heap catalog rel in
          let schema = Heap_file.schema heap in
          Printf.fprintf oc "relation %s\n" rel;
          for i = 0 to Schema.arity schema - 1 do
            Printf.fprintf oc "attr %s %s\n" (Schema.attr_name schema i)
              (ty_to_text (Schema.attr_ty schema i))
          done;
          Heap_file.iter heap (fun _rid tuple ->
              output_string oc "tuple ";
              Array.iteri
                (fun i v ->
                  if i > 0 then output_char oc '\t';
                  output_string oc (encode_value v))
                tuple;
              output_char oc '\n'))
        rels;
      List.iter
        (fun rel ->
          let schema = Catalog.schema catalog rel in
          List.iter
            (fun ix ->
              let kind =
                match Index.kind ix with
                | Index.Btree_kind -> "btree"
                | Index.Hash_kind -> "hash"
              in
              let attrs =
                Array.to_list
                  (Array.map (Schema.attr_name schema) (Index.key_positions ix))
              in
              Printf.fprintf oc "index %s %s %s %s\n" rel (Index.name ix) kind
                (String.concat " " attrs))
            (List.rev (Catalog.indexes catalog rel)))
        rels)

let split_first_space line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))

(* Load a snapshot into a fresh catalog backed by [pool].
   @raise Corrupt on malformed input; Sys_error on I/O failures. *)
let load ~pool ~filename =
  let catalog = Catalog.create pool in
  let ic = open_in filename in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (* current relation being defined: name, pending attrs (reversed),
         whether its heap has been created yet *)
      let pending_rel = ref None in
      let flush_schema () =
        match !pending_rel with
        | Some (name, attrs, false) ->
            let schema = Schema.create name (List.rev attrs) in
            ignore (Catalog.create_relation catalog schema);
            pending_rel := Some (name, attrs, true)
        | Some (_, _, true) | None -> ()
      in
      let rec loop () =
        match input_line ic with
        | exception End_of_file -> ()
        | line ->
            (if line <> "" then
               let keyword, rest = split_first_space line in
               match keyword with
               | "relation" ->
                   flush_schema ();
                   if rest = "" then fail "relation without a name";
                   pending_rel := Some (rest, [], false)
               | "attr" -> (
                   match (!pending_rel, String.split_on_char ' ' rest) with
                   | Some (name, attrs, false), [ a_name; a_ty ] ->
                       pending_rel := Some (name, (a_name, ty_of_text a_ty) :: attrs, false)
                   | Some (_, _, true), _ -> fail "attr after tuples"
                   | None, _ -> fail "attr outside a relation"
                   | _, _ -> fail "malformed attr line %S" rest)
               | "tuple" -> (
                   flush_schema ();
                   match !pending_rel with
                   | Some (name, _, true) ->
                       let values =
                         String.split_on_char '\t' rest |> List.map decode_value
                       in
                       ignore (Catalog.insert catalog ~rel:name (Array.of_list values))
                   | _ -> fail "tuple outside a relation")
               | "index" -> (
                   flush_schema ();
                   match String.split_on_char ' ' rest with
                   | rel :: name :: kind :: attrs when attrs <> [] ->
                       let kind =
                         match kind with
                         | "btree" -> Index.Btree_kind
                         | "hash" -> Index.Hash_kind
                         | k -> fail "unknown index kind %S" k
                       in
                       ignore (Catalog.create_index catalog ~kind ~rel ~name ~attrs ())
                   | _ -> fail "malformed index line %S" rest)
               | k -> fail "unknown line keyword %S" k);
            loop ()
      in
      loop ();
      flush_schema ();
      catalog)
