(* Unified secondary-index interface over one or more key attributes of
   a relation. The index stores the projection of each tuple onto
   [key_positions] and maps it to the tuple's RID. *)

type kind = Btree_kind | Hash_kind

type impl = B of Btree.t | H of Hash_index.t

type t = {
  name : string;
  key_positions : int array;  (* positions within the relation schema *)
  impl : impl;
  file_id : int;  (* simulated file for buffer-pool charging *)
}

(* [prefill] backfills the index at creation: B-trees are bulk-loaded
   (sort + group + pack), hash indexes filled by insertion. *)
let create ?(kind = Btree_kind) ?(prefill = []) ~name ~key_positions ~file_id () =
  let impl =
    match kind with
    | Btree_kind when prefill <> [] ->
        let keyed =
          List.map
            (fun (tuple, rid) -> (Minirel_storage.Tuple.project tuple key_positions, rid))
            prefill
        in
        let sorted =
          List.sort (fun (a, _) (b, _) -> Minirel_storage.Tuple.compare a b) keyed
        in
        let grouped =
          List.fold_left
            (fun acc (k, rid) ->
              match acc with
              | (gk, rids) :: rest when Minirel_storage.Tuple.equal gk k ->
                  (gk, rid :: rids) :: rest
              | _ -> (k, [ rid ]) :: acc)
            [] sorted
        in
        B (Btree.bulk_load (List.rev grouped))
    | Btree_kind -> B (Btree.create ())
    | Hash_kind ->
        let h = Hash_index.create () in
        List.iter
          (fun (tuple, rid) ->
            Hash_index.insert h (Minirel_storage.Tuple.project tuple key_positions) rid)
          prefill;
        H h
  in
  { name; key_positions; impl; file_id }

let name t = t.name
let key_positions t = t.key_positions
let file_id t = t.file_id
let kind t = match t.impl with B _ -> Btree_kind | H _ -> Hash_kind

let key_of_tuple t tuple = Minirel_storage.Tuple.project tuple t.key_positions

(* Route simulated node/bucket visits into the buffer pool. *)
let attach_pool t pool =
  let visit page = Minirel_storage.Buffer_pool.access pool ~file:t.file_id ~page ~mode:`Read in
  match t.impl with
  | B b -> Btree.set_visit_hook b visit
  | H h -> Hash_index.set_visit_hook h visit

let insert t tuple rid =
  let key = key_of_tuple t tuple in
  match t.impl with B b -> Btree.insert b key rid | H h -> Hash_index.insert h key rid

let delete t tuple rid =
  let key = key_of_tuple t tuple in
  match t.impl with
  | B b -> Btree.delete b key rid
  | H h -> Hash_index.delete h key rid

let find t key =
  match t.impl with B b -> Btree.find b key | H h -> Hash_index.find h key

(* Range scan; only meaningful on B-tree indexes. @raise Invalid_argument
   on hash indexes. *)
let range t ~lo ~hi f =
  match t.impl with
  | B b -> Btree.range b ~lo ~hi f
  | H _ -> invalid_arg "Index.range: hash index does not support ranges"

let n_entries t =
  match t.impl with B b -> Btree.n_entries b | H h -> Hash_index.n_entries h

(* Structural self-check: B-tree invariants (no-op for hash indexes).
   @raise Btree.Invalid on violation. *)
let validate t = match t.impl with B b -> Btree.validate b | H _ -> ()
