(** Plan construction for template queries.

    Queries drive from an indexed selection condition (the paper's
    plans: fetch from R via the index on R.f, probe S via the index on
    S.d per outer tuple), chain index-nested-loop joins across the
    template's join graph — falling back to naive nested loops where an
    index is missing — apply every remaining selection at its
    relation's access point, and project the expanded select list Ls'.

    The same machinery plans maintenance delta joins and the containing
    view's full join. *)

(** Plan a template query; the cursor yields Ls' result tuples. With
    [stats], the driving selection is the indexed condition expected to
    fetch the fewest base rows; without, the first indexed one. *)
val plan_query : ?stats:Stats.t -> Minirel_index.Catalog.t -> Minirel_query.Instance.t -> Plan.t

(** Delta join for view maintenance: join the changed relation's
    [deltas] (passed literally) with the other base relations; Cselect
    is not applied (Section 3.4). Yields Ls' tuples. *)
val plan_delta_join :
  Minirel_index.Catalog.t ->
  Minirel_query.Template.compiled ->
  delta_rel:int ->
  Minirel_storage.Tuple.t list ->
  Plan.t

(** Full join of the template — the containing MV's contents. *)
val plan_full_join : Minirel_index.Catalog.t -> Minirel_query.Template.compiled -> Plan.t
