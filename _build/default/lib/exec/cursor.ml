(* Pull-based cursors: the executor's iterator model. A cursor yields
   [Some x] until exhausted, then [None] forever. Pull-based execution
   is what makes "time to first result tuple" measurable. *)

type 'a t = unit -> 'a option

let empty : 'a t = fun () -> None

let of_list xs : 'a t =
  let rest = ref xs in
  fun () ->
    match !rest with
    | [] -> None
    | x :: tl ->
        rest := tl;
        Some x

let map f (c : 'a t) : 'b t = fun () -> Option.map f (c ())

let filter p (c : 'a t) : 'a t =
  let rec next () =
    match c () with
    | None -> None
    | Some x when p x -> Some x
    | Some _ -> next ()
  in
  next

(* Expand each element into a list of results, streamed in order. *)
let concat_map_list f (c : 'a t) : 'b t =
  let pending = ref [] in
  let rec next () =
    match !pending with
    | x :: tl ->
        pending := tl;
        Some x
    | [] -> (
        match c () with
        | None -> None
        | Some x ->
            pending := f x;
            next ())
  in
  next

let append (a : 'a t) (b : 'a t) : 'a t =
  let first = ref true in
  let rec next () =
    if !first then
      match a () with
      | Some x -> Some x
      | None ->
          first := false;
          next ()
    else b ()
  in
  next

let iter f (c : 'a t) =
  let rec go () =
    match c () with
    | None -> ()
    | Some x ->
        f x;
        go ()
  in
  go ()

let fold f init (c : 'a t) =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) c;
  !acc

let to_list c = List.rev (fold (fun acc x -> x :: acc) [] c)

let count c = fold (fun n _ -> n + 1) 0 c
