(** Pull-based cursors: the executor's iterator model. A cursor yields
    [Some x] until exhausted, then [None] forever. Pull execution is
    what makes "time to first result tuple" measurable. *)

type 'a t = unit -> 'a option

val empty : 'a t
val of_list : 'a list -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val filter : ('a -> bool) -> 'a t -> 'a t

(** Expand each element into a list, streamed in order. *)
val concat_map_list : ('a -> 'b list) -> 'a t -> 'b t

val append : 'a t -> 'a t -> 'a t
val iter : ('a -> unit) -> 'a t -> unit
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_list : 'a t -> 'a list
val count : 'a t -> int
