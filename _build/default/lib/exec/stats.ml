(* Per-attribute statistics: distinct-value counts and equi-depth
   histograms, collected by scanning a relation (the paper runs "the
   PostgreSQL statistics collection program on all the relations"
   before its experiments). The planner uses them to drive each query
   from its most selective indexed condition. *)

open Minirel_storage
open Minirel_query
module Catalog = Minirel_index.Catalog

type attr_stats = {
  n_values : int;  (* non-null values seen *)
  n_distinct : int;
  min_v : Value.t option;
  max_v : Value.t option;
  histogram : Discretize.t;  (* equi-depth bucket boundaries *)
  bucket_counts : int array;  (* values per basic interval of [histogram] *)
}

type rel_stats = { rel : string; n_tuples : int; attrs : (string * attr_stats) list }

type t = { tables : (string, rel_stats) Hashtbl.t }

let histogram_buckets = 16

let collect_attr values =
  let sorted = List.sort Value.compare values in
  let n_values = List.length sorted in
  let n_distinct =
    match sorted with
    | [] -> 0
    | first :: rest ->
        fst
          (List.fold_left
             (fun (n, prev) v -> if Value.equal prev v then (n, v) else (n + 1, v))
             (1, first) rest)
  in
  let histogram = Discretize.equi_depth ~bins:histogram_buckets values in
  let bucket_counts = Array.make (Discretize.n_intervals histogram) 0 in
  List.iter
    (fun v ->
      let id = Discretize.id_of_value histogram v in
      bucket_counts.(id) <- bucket_counts.(id) + 1)
    values;
  {
    n_values;
    n_distinct;
    min_v = (match sorted with [] -> None | v :: _ -> Some v);
    max_v = (match List.rev sorted with [] -> None | v :: _ -> Some v);
    histogram;
    bucket_counts;
  }

(* Scan one relation and build statistics for every attribute. *)
let analyze_relation catalog rel =
  let heap = Catalog.heap catalog rel in
  let schema = Heap_file.schema heap in
  let arity = Schema.arity schema in
  let columns = Array.make arity [] in
  Heap_file.iter heap (fun _rid tuple ->
      for i = 0 to arity - 1 do
        if not (Value.is_null tuple.(i)) then columns.(i) <- tuple.(i) :: columns.(i)
      done);
  {
    rel;
    n_tuples = Heap_file.n_tuples heap;
    attrs =
      List.init arity (fun i -> (Schema.attr_name schema i, collect_attr columns.(i)));
  }

(* Analyze every relation in the catalog. *)
let analyze catalog =
  let t = { tables = Hashtbl.create 16 } in
  List.iter
    (fun rel -> Hashtbl.replace t.tables rel (analyze_relation catalog rel))
    (Catalog.relations catalog);
  t

let relation t rel = Hashtbl.find_opt t.tables rel

let attr t ~rel ~attr =
  match relation t rel with
  | None -> None
  | Some rs -> List.assoc_opt attr rs.attrs

let n_tuples t rel = match relation t rel with Some rs -> Some rs.n_tuples | None -> None

(* Estimated fraction of the relation's rows with attribute = v:
   1/n_distinct, refined by the histogram bucket containing v. *)
let eq_selectivity t ~rel ~attr:a v =
  match attr t ~rel ~attr:a with
  | None -> 1.0
  | Some s ->
      if s.n_values = 0 || s.n_distinct = 0 then 0.0
      else begin
        let bucket = Discretize.id_of_value s.histogram v in
        let in_bucket = float_of_int s.bucket_counts.(bucket) in
        let per_distinct = float_of_int s.n_values /. float_of_int s.n_distinct in
        (* a value cannot exceed its bucket's population *)
        Float.min in_bucket per_distinct /. float_of_int s.n_values
      end

(* Estimated fraction of rows with the attribute inside [iv], from the
   histogram bucket populations. *)
let range_selectivity t ~rel ~attr:a (iv : Interval.t) =
  match attr t ~rel ~attr:a with
  | None -> 1.0
  | Some s ->
      if s.n_values = 0 then 0.0
      else begin
        let total = ref 0.0 in
        let n = Discretize.n_intervals s.histogram in
        for id = 0 to n - 1 do
          let basic = Discretize.interval_of_id s.histogram id in
          match Interval.intersect basic iv with
          | None -> ()
          | Some piece ->
              let frac =
                if Interval.equal piece basic then 1.0
                else 0.5 (* partial bucket overlap: assume half *)
              in
              total := !total +. (frac *. float_of_int s.bucket_counts.(id))
        done;
        Float.min 1.0 (!total /. float_of_int s.n_values)
      end

(* Estimated rows produced by one selection condition of a query. *)
let condition_cardinality t ~rel ~attr:a (d : Instance.disjuncts) =
  let rows = float_of_int (Option.value ~default:0 (n_tuples t rel)) in
  let sel =
    match d with
    | Instance.Dvalues vs ->
        List.fold_left (fun acc v -> acc +. eq_selectivity t ~rel ~attr:a v) 0.0 vs
    | Instance.Dintervals ivs ->
        List.fold_left (fun acc iv -> acc +. range_selectivity t ~rel ~attr:a iv) 0.0 ivs
  in
  rows *. Float.min 1.0 sel

let pp_attr ppf (name, s) =
  Fmt.pf ppf "%s: n=%d distinct=%d range=[%a, %a]" name s.n_values s.n_distinct
    Fmt.(option ~none:(any "-") Value.pp)
    s.min_v
    Fmt.(option ~none:(any "-") Value.pp)
    s.max_v

let pp_relation ppf rs =
  Fmt.pf ppf "%s (%d tuples)@." rs.rel rs.n_tuples;
  List.iter (fun a -> Fmt.pf ppf "  %a@." pp_attr a) rs.attrs
