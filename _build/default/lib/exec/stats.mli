(** Per-attribute statistics: distinct-value counts and equi-depth
    histograms, collected by scanning relations (the paper runs the
    PostgreSQL statistics collector before its experiments). The
    planner uses them to drive each query from its most selective
    indexed condition. *)

open Minirel_storage
open Minirel_query

type attr_stats = {
  n_values : int;  (** non-null values seen *)
  n_distinct : int;
  min_v : Value.t option;
  max_v : Value.t option;
  histogram : Discretize.t;  (** equi-depth bucket boundaries *)
  bucket_counts : int array;  (** values per histogram bucket *)
}

type rel_stats = { rel : string; n_tuples : int; attrs : (string * attr_stats) list }

type t

val histogram_buckets : int

(** Scan one relation and build statistics for all its attributes.
    @raise Not_found on unknown relations. *)
val analyze_relation : Minirel_index.Catalog.t -> string -> rel_stats

(** Analyze every relation in the catalog. *)
val analyze : Minirel_index.Catalog.t -> t

val relation : t -> string -> rel_stats option
val attr : t -> rel:string -> attr:string -> attr_stats option
val n_tuples : t -> string -> int option

(** Estimated fraction of rows with attribute = v (1 when the relation
    or attribute is unknown). *)
val eq_selectivity : t -> rel:string -> attr:string -> Value.t -> float

(** Estimated fraction of rows with the attribute inside the interval. *)
val range_selectivity : t -> rel:string -> attr:string -> Interval.t -> float

(** Estimated rows produced by one selection condition of a query. *)
val condition_cardinality : t -> rel:string -> attr:string -> Instance.disjuncts -> float

val pp_relation : rel_stats Fmt.t
