(* Plan interpreter: compiles a [Plan.t] into a pull cursor against a
   catalog. Heap fetches and index node visits are charged to the
   catalog's buffer pool, so [Io_stats] diffs around a cursor drain give
   the simulated I/O cost of the query. *)

open Minirel_storage
open Minirel_query
module Catalog = Minirel_index.Catalog
module Index = Minirel_index.Index

let find_index catalog ~rel ~name =
  match List.find_opt (fun ix -> Index.name ix = name) (Catalog.indexes catalog rel) with
  | Some ix -> ix
  | None -> invalid_arg (Fmt.str "Executor: no index %s on %s" name rel)

(* Fetch the tuples for a rid list, dropping rids whose slot has been
   emptied between index lookup and fetch (cannot happen inside one
   query, but keeps the engine robust during maintenance replays). *)
let fetch_all heap rids = List.filter_map (fun rid -> Heap_file.fetch heap rid) rids

(* --- aggregate machinery for the Aggregate node --- *)

type agg_state = {
  spec : Plan.agg;
  mutable cnt : int;
  mutable sum : float;
  mutable min_a : Value.t option;
  mutable max_a : Value.t option;
}

let new_agg_state spec = { spec; cnt = 0; sum = 0.0; min_a = None; max_a = None }

let agg_input_value spec (t : Tuple.t) =
  match spec with
  | Plan.Count_star -> None
  | Plan.Sum_of i | Plan.Avg_of i | Plan.Min_of i | Plan.Max_of i -> Some t.(i)

let float_of_num = function
  | Value.Int i -> float_of_int i
  | Value.Float f -> f
  | Value.Null -> 0.0
  | Value.Str _ -> invalid_arg "Executor: cannot aggregate a string attribute"

let agg_step st t =
  st.cnt <- st.cnt + 1;
  match agg_input_value st.spec t with
  | None -> ()
  | Some v ->
      st.sum <- st.sum +. float_of_num v;
      (match st.min_a with
      | None -> st.min_a <- Some v
      | Some m -> if Value.compare v m < 0 then st.min_a <- Some v);
      (match st.max_a with
      | None -> st.max_a <- Some v
      | Some m -> if Value.compare v m > 0 then st.max_a <- Some v)

let agg_finish st =
  match st.spec with
  | Plan.Count_star -> Value.Int st.cnt
  | Plan.Sum_of _ -> Value.Float st.sum
  | Plan.Avg_of _ ->
      if st.cnt = 0 then Value.Null else Value.Float (st.sum /. float_of_int st.cnt)
  | Plan.Min_of _ -> Option.value ~default:Value.Null st.min_a
  | Plan.Max_of _ -> Option.value ~default:Value.Null st.max_a

let rec cursor catalog (plan : Plan.t) : Tuple.t Cursor.t =
  match plan with
  | Plan.Literal ts -> Cursor.of_list ts
  | Plan.Scan { rel; pred } ->
      let heap = Catalog.heap catalog rel in
      (* stream page by page; page count snapshot keeps the cursor
         insensitive to pages appended while it is drained *)
      let n_pages = Heap_file.n_pages heap in
      let page = ref 0 in
      let buffered = ref [] in
      let rec next () =
        match !buffered with
        | t :: tl ->
            buffered := tl;
            if Predicate.eval pred t then Some t else next ()
        | [] ->
            if !page >= n_pages then None
            else begin
              let p = !page in
              incr page;
              let acc = ref [] in
              Heap_file.iter_page heap p (fun _rid t -> acc := t :: !acc);
              buffered := List.rev !acc;
              next ()
            end
      in
      next
  | Plan.Index_lookup { rel; index; keys; pred } ->
      let heap = Catalog.heap catalog rel in
      let ix = find_index catalog ~rel ~name:index in
      Cursor.of_list keys
      |> Cursor.concat_map_list (fun key -> fetch_all heap (Index.find ix key))
      |> Cursor.filter (Predicate.eval pred)
  | Plan.Index_range { rel; index; ranges; pred } ->
      let heap = Catalog.heap catalog rel in
      let ix = find_index catalog ~rel ~name:index in
      Cursor.of_list ranges
      |> Cursor.concat_map_list (fun (lo, hi) ->
             let rids = ref [] in
             Index.range ix ~lo ~hi (fun _key krids -> rids := krids :: !rids);
             fetch_all heap (List.concat (List.rev !rids)))
      |> Cursor.filter (Predicate.eval pred)
  | Plan.Inlj { outer; rel; index; outer_key; pred } ->
      let heap = Catalog.heap catalog rel in
      let ix = find_index catalog ~rel ~name:index in
      cursor catalog outer
      |> Cursor.concat_map_list (fun outer_t ->
             let key = Tuple.project outer_t outer_key in
             fetch_all heap (Index.find ix key)
             |> List.filter (Predicate.eval pred)
             |> List.map (fun inner_t -> Tuple.concat outer_t inner_t))
  | Plan.Nlj { outer; rel; eq; pred } ->
      let heap = Catalog.heap catalog rel in
      cursor catalog outer
      |> Cursor.concat_map_list (fun outer_t ->
             let matches = ref [] in
             Heap_file.iter heap (fun _rid inner_t ->
                 if
                   Predicate.eval pred inner_t
                   && List.for_all
                        (fun (op, ip) -> Value.equal outer_t.(op) inner_t.(ip))
                        eq
                 then matches := Tuple.concat outer_t inner_t :: !matches);
             List.rev !matches)
  | Plan.Filter (pred, inner) -> Cursor.filter (Predicate.eval pred) (cursor catalog inner)
  | Plan.Project (positions, inner) ->
      Cursor.map (fun t -> Tuple.project t positions) (cursor catalog inner)
  | Plan.Sort { keys; desc; input } ->
      (* blocking: drain, sort, stream. Materialisation is delayed until
         the first pull so upstream I/O is charged when the sort runs. *)
      let sorted = ref None in
      let cmp a b =
        let c = Tuple.compare (Tuple.project a keys) (Tuple.project b keys) in
        if desc then -c else c
      in
      let inner = cursor catalog input in
      fun () ->
        let cur =
          match !sorted with
          | Some cur -> cur
          | None ->
              let cur = Cursor.of_list (List.stable_sort cmp (Cursor.to_list inner)) in
              sorted := Some cur;
              cur
        in
        cur ()
  | Plan.Limit (n, input) ->
      let remaining = ref n in
      let inner = cursor catalog input in
      fun () ->
        if !remaining <= 0 then None
        else begin
          decr remaining;
          inner ()
        end
  | Plan.Aggregate { group_by; aggs; input } ->
      let inner = cursor catalog input in
      let materialized = ref None in
      fun () ->
        let cur =
          match !materialized with
          | Some cur -> cur
          | None ->
              let groups : (Tuple.t * agg_state list) Tuple.Table.t =
                Tuple.Table.create 64
              in
              let order = ref [] in
              Cursor.iter
                (fun t ->
                  let key = Tuple.project t group_by in
                  let _, states =
                    match Tuple.Table.find_opt groups key with
                    | Some entry -> entry
                    | None ->
                        let entry = (key, List.map new_agg_state aggs) in
                        Tuple.Table.replace groups key entry;
                        order := key :: !order;
                        entry
                  in
                  List.iter (fun st -> agg_step st t) states)
                inner;
              let rows =
                List.rev_map
                  (fun key ->
                    let _, states = Option.get (Tuple.Table.find_opt groups key) in
                    Tuple.concat key (Array.of_list (List.map agg_finish states)))
                  !order
              in
              let cur = Cursor.of_list rows in
              materialized := Some cur;
              cur
        in
        cur ()

let run_to_list catalog plan = Cursor.to_list (cursor catalog plan)

let count catalog plan = Cursor.count (cursor catalog plan)
