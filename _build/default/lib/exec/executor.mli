(** Plan interpreter: compiles a {!Plan.t} into a pull cursor against a
    catalog. Heap fetches and index node visits are charged to the
    catalog's buffer pool, so {!Minirel_storage.Io_stats} diffs around a
    cursor drain give the simulated I/O cost of a query. *)

(** @raise Invalid_argument on plans naming unknown indexes;
    @raise Not_found on unknown relations. *)
val cursor : Minirel_index.Catalog.t -> Plan.t -> Minirel_storage.Tuple.t Cursor.t

val run_to_list : Minirel_index.Catalog.t -> Plan.t -> Minirel_storage.Tuple.t list
val count : Minirel_index.Catalog.t -> Plan.t -> int
