(* Plan construction for template queries.

   Queries drive from an indexed selection condition (the paper's plans:
   "fetch tuples from R using the index on R.f; for each retrieved tuple
   use the index on S.d to search S"), then chain index-nested-loop
   joins across the template's join graph, applying every remaining
   selection at its relation's access point, and finally project the
   expanded select list Ls'.

   The same machinery plans delta joins for view maintenance: the
   changed relation's delta tuples replace its access path. *)

open Minirel_storage
open Minirel_query
module Catalog = Minirel_index.Catalog
module Index = Minirel_index.Index
module Btree = Minirel_index.Btree

(* A layout tracks which template relations compose the current joined
   tuple, in visit order. *)
type layout = { order : int list; compiled : Template.compiled }

let layout_offset layout rel =
  let rec go acc = function
    | [] -> invalid_arg "Planner: relation not in layout"
    | r :: rest ->
        if r = rel then acc
        else go (acc + Schema.arity layout.compiled.Template.schemas.(r)) rest
  in
  go 0 layout.order

let layout_pos layout { Template.rel; attr } =
  layout_offset layout rel + Schema.pos layout.compiled.Template.schemas.(rel) attr

let interval_to_range (iv : Interval.t) : Plan.range =
  let lo =
    match iv.Interval.lo with
    | Interval.Neg_inf -> Btree.Unbounded
    | Interval.L_incl v -> Btree.Inclusive [| v |]
    | Interval.L_excl v -> Btree.Exclusive [| v |]
  in
  let hi =
    match iv.Interval.hi with
    | Interval.Pos_inf -> Btree.Unbounded
    | Interval.U_incl v -> Btree.Inclusive [| v |]
    | Interval.U_excl v -> Btree.Exclusive [| v |]
  in
  (lo, hi)

(* Relation-local predicate: fixed (parameter-free) filters plus every
   selection condition on this relation, minus the skipped one. *)
let local_pred compiled params ?(skip = -1) rel =
  let spec = compiled.Template.spec in
  let fixed =
    List.filter_map (fun (r, p) -> if r = rel then Some p else None) spec.Template.fixed
  in
  let sels =
    Array.to_list spec.Template.selections
    |> List.mapi (fun i s -> (i, s))
    |> List.filter_map (fun (i, s) ->
           let a = Template.selection_attr s in
           if a.Template.rel = rel && i <> skip then
             let pos = Schema.pos compiled.Template.schemas.(rel) a.Template.attr in
             Some (Instance.condition_pred pos params.(i))
           else None)
  in
  Predicate.conj (fixed @ sels)

let index_on_attr catalog compiled (a : Template.attr_ref) =
  let rel_name = compiled.Template.spec.Template.relations.(a.Template.rel) in
  Catalog.index_on catalog ~rel:rel_name ~attrs:[ a.Template.attr ]

(* Pick the driving selection among the Ci whose attribute carries a
   usable index (interval form needs a B-tree): without statistics, the
   first such Ci; with statistics, the one expected to fetch the fewest
   base rows. *)
let choose_driver ?stats catalog compiled (params : Instance.disjuncts array) =
  let sels = compiled.Template.spec.Template.selections in
  let usable i =
    let a = Template.selection_attr sels.(i) in
    match index_on_attr catalog compiled a with
    | Some ix -> (
        match (params.(i), Index.kind ix) with
        | Instance.Dvalues _, _ -> Some (i, a, ix)
        | Instance.Dintervals _, Index.Btree_kind -> Some (i, a, ix)
        | Instance.Dintervals _, Index.Hash_kind -> None)
    | None -> None
  in
  let candidates = List.filter_map usable (List.init (Array.length sels) Fun.id) in
  match (candidates, stats) with
  | [], _ -> None
  | first :: _, None -> Some first
  | _, Some st ->
      let cost (i, (a : Template.attr_ref), _) =
        Stats.condition_cardinality st
          ~rel:compiled.Template.spec.Template.relations.(a.Template.rel)
          ~attr:a.Template.attr params.(i)
      in
      List.fold_left
        (fun best c ->
          match best with
          | None -> Some c
          | Some b -> if cost c < cost b then Some c else best)
        None candidates

(* Expected tuples of [rel] matching one join key: n_tuples / n_distinct
   of the join attribute. Used to greedily keep intermediate results
   small when statistics are available. *)
let join_fanout stats compiled (to_ref : Template.attr_ref) =
  let rel_name = compiled.Template.spec.Template.relations.(to_ref.Template.rel) in
  match Stats.attr stats ~rel:rel_name ~attr:to_ref.Template.attr with
  | Some a when a.Stats.n_distinct > 0 ->
      float_of_int a.Stats.n_values /. float_of_int a.Stats.n_distinct
  | Some _ | None -> 1e9

(* Chain the not-yet-visited relations onto [base] along join edges.
   Returns the final plan and layout. Without statistics, edges are
   taken in template order; with statistics, the edge with the smallest
   expected join fanout goes first. *)
let join_rest ?stats catalog compiled params base start_rel =
  let spec = compiled.Template.spec in
  let n = Array.length spec.Template.relations in
  let visited = Array.make n false in
  visited.(start_rel) <- true;
  let layout = ref { order = [ start_rel ]; compiled } in
  let plan = ref base in
  let remaining = ref (n - 1) in
  while !remaining > 0 do
    (* join edges from the visited set to a new relation *)
    let candidates =
      List.filter_map
        (fun (a, b) ->
          if visited.(a.Template.rel) && not (visited.(b.Template.rel)) then Some (a, b)
          else if visited.(b.Template.rel) && not (visited.(a.Template.rel)) then
            Some (b, a)
          else None)
        spec.Template.joins
    in
    let edge =
      match (candidates, stats) with
      | [], _ -> None
      | first :: _, None -> Some first
      | _, Some st ->
          List.fold_left
            (fun best ((_, to_ref) as c) ->
              match best with
              | None -> Some c
              | Some (_, best_to) ->
                  if join_fanout st compiled to_ref < join_fanout st compiled best_to then
                    Some c
                  else best)
            None candidates
    in
    match edge with
    | Some (from_ref, to_ref) ->
        let inner_rel = to_ref.Template.rel in
        let inner_name = spec.Template.relations.(inner_rel) in
        let pred = local_pred compiled params inner_rel in
        let outer_pos = layout_pos !layout from_ref in
        (plan :=
           match index_on_attr catalog compiled to_ref with
           | Some ix ->
               Plan.Inlj
                 {
                   outer = !plan;
                   rel = inner_name;
                   index = Index.name ix;
                   outer_key = [| outer_pos |];
                   pred;
                 }
           | None ->
               let inner_pos =
                 Schema.pos compiled.Template.schemas.(inner_rel) to_ref.Template.attr
               in
               Plan.Nlj
                 { outer = !plan; rel = inner_name; eq = [ (outer_pos, inner_pos) ]; pred });
        visited.(inner_rel) <- true;
        layout := { !layout with order = !layout.order @ [ inner_rel ] };
        decr remaining
    | None ->
        (* disconnected join graph: cross product with the first
           unvisited relation (legal but never produced by our
           workloads) *)
        let inner_rel =
          let rec first i = if visited.(i) then first (i + 1) else i in
          first 0
        in
        let inner_name = spec.Template.relations.(inner_rel) in
        plan :=
          Plan.Nlj
            {
              outer = !plan;
              rel = inner_name;
              eq = [];
              pred = local_pred compiled params inner_rel;
            };
        visited.(inner_rel) <- true;
        layout := { !layout with order = !layout.order @ [ inner_rel ] };
        decr remaining
  done;
  (!plan, !layout)

(* Final projection: Ls' positions within the produced layout. *)
let project_expanded compiled layout plan =
  let positions =
    Array.of_list
      (List.map (fun a -> layout_pos layout a) compiled.Template.expanded_select)
  in
  Plan.Project (positions, plan)

(* Plan a template query; the cursor yields Ls' result tuples. *)
let plan_query ?stats catalog instance =
  let compiled = Instance.compiled instance in
  let params = Instance.params instance in
  let spec = compiled.Template.spec in
  let base, start_rel =
    match choose_driver ?stats catalog compiled params with
    | Some (i, a, ix) -> (
        let rel = a.Template.rel in
        let rel_name = spec.Template.relations.(rel) in
        let pred = local_pred compiled params ~skip:i rel in
        match params.(i) with
        | Instance.Dvalues vs ->
            ( Plan.Index_lookup
                {
                  rel = rel_name;
                  index = Index.name ix;
                  keys = List.map (fun v -> [| v |]) vs;
                  pred;
                },
              rel )
        | Instance.Dintervals ivs ->
            ( Plan.Index_range
                {
                  rel = rel_name;
                  index = Index.name ix;
                  ranges = List.map interval_to_range ivs;
                  pred;
                },
              rel ))
    | None ->
        (* no usable index: scan the first selection's relation *)
        let rel = (Template.selection_attr spec.Template.selections.(0)).Template.rel in
        (Plan.Scan { rel = spec.Template.relations.(rel); pred = local_pred compiled params rel }, rel)
  in
  let plan, layout = join_rest ?stats catalog compiled params base start_rel in
  project_expanded compiled layout plan

(* Plan the delta join for maintenance: join the changed relation's
   delta tuples with the other base relations; Cselect is NOT applied
   (maintenance concerns the containing view; Section 3.4). The cursor
   yields Ls' tuples. *)
let plan_delta_join catalog compiled ~delta_rel deltas =
  let fixed_only rel =
    Predicate.conj
      (List.filter_map
         (fun (r, p) -> if r = rel then Some p else None)
         compiled.Template.spec.Template.fixed)
  in
  let base =
    Plan.Literal (List.filter (Predicate.eval (fixed_only delta_rel)) deltas)
  in
  (* join with fixed predicates only: Cselect has no parameters here, so
     hand join_rest a spec stripped of its selections *)
  let stripped =
    { compiled with Template.spec = { compiled.Template.spec with Template.selections = [||] } }
  in
  let plan, layout = join_rest catalog stripped [||] base delta_rel in
  let layout = { layout with compiled } in
  project_expanded compiled layout plan

(* Full join of the template (the containing MV's contents): drive from
   relation 0 with a scan. *)
let plan_full_join catalog compiled =
  let spec = compiled.Template.spec in
  let empty_params = Array.make (Array.length spec.Template.selections) (Instance.Dvalues []) in
  let base =
    Plan.Scan
      {
        rel = spec.Template.relations.(0);
        pred =
          Predicate.conj
            (List.filter_map (fun (r, p) -> if r = 0 then Some p else None) spec.Template.fixed);
      }
  in
  let plan, layout =
    join_rest catalog
      { compiled with Template.spec = { spec with Template.selections = [||] } }
      empty_params base 0
  in
  let layout = { layout with compiled } in
  project_expanded compiled layout plan
