lib/exec/cursor.ml: List Option
