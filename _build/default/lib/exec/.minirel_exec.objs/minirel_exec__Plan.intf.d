lib/exec/plan.mli: Fmt Minirel_index Minirel_query Minirel_storage Predicate Tuple
