lib/exec/plan.ml: Fmt List Minirel_index Minirel_query Minirel_storage Predicate Tuple
