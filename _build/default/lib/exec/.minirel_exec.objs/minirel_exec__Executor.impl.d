lib/exec/executor.ml: Array Cursor Fmt Heap_file List Minirel_index Minirel_query Minirel_storage Option Plan Predicate Tuple Value
