lib/exec/cursor.mli:
