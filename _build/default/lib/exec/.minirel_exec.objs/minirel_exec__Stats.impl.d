lib/exec/stats.ml: Array Discretize Float Fmt Hashtbl Heap_file Instance Interval List Minirel_index Minirel_query Minirel_storage Option Schema Value
