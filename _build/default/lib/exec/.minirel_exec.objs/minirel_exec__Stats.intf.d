lib/exec/stats.mli: Discretize Fmt Instance Interval Minirel_index Minirel_query Minirel_storage Value
