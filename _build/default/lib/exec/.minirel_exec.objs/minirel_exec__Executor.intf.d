lib/exec/executor.mli: Cursor Minirel_index Minirel_storage Plan
