lib/exec/planner.ml: Array Fun Instance Interval List Minirel_index Minirel_query Minirel_storage Plan Predicate Schema Stats Template
