lib/exec/planner.mli: Minirel_index Minirel_query Minirel_storage Plan Stats
