(** FIFO replacement: evict in admission order, ignoring recency. The
    weakest baseline in the policy ablation.

    @raise Invalid_argument if [capacity <= 0]. *)
val create : capacity:int -> 'k Policy.t
