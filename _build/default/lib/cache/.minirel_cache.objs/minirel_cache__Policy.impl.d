lib/cache/policy.ml: Cache_stats
