lib/cache/clock.ml: Array Cache_stats Hashtbl List Policy
