lib/cache/two_q.ml: Cache_stats Clock Hashtbl Policy Queue
