lib/cache/cache_stats.mli: Fmt
