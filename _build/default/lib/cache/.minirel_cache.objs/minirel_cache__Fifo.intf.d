lib/cache/fifo.mli: Policy
