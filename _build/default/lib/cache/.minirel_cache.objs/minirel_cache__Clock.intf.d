lib/cache/clock.mli: Policy
