lib/cache/policies.mli: Policy
