lib/cache/cache_stats.ml: Fmt
