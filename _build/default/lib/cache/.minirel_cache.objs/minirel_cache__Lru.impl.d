lib/cache/lru.ml: Cache_stats Hashtbl Policy
