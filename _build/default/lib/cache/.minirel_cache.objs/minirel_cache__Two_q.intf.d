lib/cache/two_q.mli: Policy
