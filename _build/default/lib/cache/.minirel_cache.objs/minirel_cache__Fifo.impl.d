lib/cache/fifo.ml: Cache_stats Hashtbl Policy Queue
