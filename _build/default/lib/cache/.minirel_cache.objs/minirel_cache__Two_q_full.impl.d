lib/cache/two_q_full.ml: Cache_stats Hashtbl Lru Policy Queue
