lib/cache/policy.mli: Cache_stats
