lib/cache/two_q_full.mli: Policy
