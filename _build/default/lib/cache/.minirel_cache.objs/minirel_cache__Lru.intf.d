lib/cache/lru.mli: Policy
