lib/cache/policies.ml: Clock Fifo Lru Two_q Two_q_full
