(** Full 2Q [Johnson & Shasha, VLDB'94]: data-holding FIFO [A1in]
    (25% of capacity), ghost FIFO [A1out] (50%), LRU [Am] (75%). Cold
    keys are admitted into A1in on first reference; a ghost-staged key
    promotes to Am; A1in hits do not promote. [admit_on_fill] is false.
    Included alongside the paper's simplified variant for the policy
    ablation.

    @raise Invalid_argument if [capacity <= 0]. *)
val create : capacity:int -> 'k Policy.t
