(** Simplified 2Q [Johnson & Shasha, VLDB'94], exactly as specialised in
    Section 4.1 of the paper: [Am] is a CLOCK of [capacity] resident
    entries; [A1] is a FIFO {e ghost} queue of [capacity/2] keys. A cold
    key's first reference stages it in A1 ([`Rejected]); a second
    reference while staged promotes it to Am ([`Admitted]); Am
    references behave like CLOCK hits. [admit_on_fill] is [false].

    @raise Invalid_argument if [capacity <= 0]. *)
val create : capacity:int -> 'k Policy.t
