(** Constructor dispatch over the available replacement policies. *)

type kind = Clock | Two_q | Two_q_full | Lru | Fifo

val all : kind list
val to_string : kind -> string
val of_string : string -> kind option
val make : kind -> capacity:int -> 'k Policy.t
