(* Constructor dispatch over the available replacement policies. *)

type kind = Clock | Two_q | Two_q_full | Lru | Fifo

let all = [ Clock; Two_q; Two_q_full; Lru; Fifo ]

let to_string = function
  | Clock -> "clock"
  | Two_q -> "2q"
  | Two_q_full -> "2q-full"
  | Lru -> "lru"
  | Fifo -> "fifo"

let of_string = function
  | "clock" -> Some Clock
  | "2q" | "two_q" | "twoq" -> Some Two_q
  | "2q-full" | "two_q_full" -> Some Two_q_full
  | "lru" -> Some Lru
  | "fifo" -> Some Fifo
  | _ -> None

let make kind ~capacity =
  match kind with
  | Clock -> Clock.create ~capacity
  | Two_q -> Two_q.create ~capacity
  | Two_q_full -> Two_q_full.create ~capacity
  | Lru -> Lru.create ~capacity
  | Fifo -> Fifo.create ~capacity
