(** LRU replacement (intrusive doubly-linked list + hash table).
    Included for the policy ablation; the paper evaluates CLOCK and 2Q.

    @raise Invalid_argument if [capacity <= 0]. *)
val create : capacity:int -> 'k Policy.t
