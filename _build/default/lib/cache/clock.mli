(** CLOCK (second-chance) replacement — the paper's default manager for
    the basic condition parts of a PMV (Section 3.2). A hit sets the
    slot's reference bit; admission fills a free slot if one exists,
    otherwise the hand sweeps, clearing bits, and evicts the first slot
    whose bit is clear.

    @raise Invalid_argument if [capacity <= 0]. *)
val create : capacity:int -> 'k Policy.t
