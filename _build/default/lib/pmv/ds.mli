(** The temporary in-memory structure DS of Operations O2/O3 (Section
    3.3): a multiset of the result tuples already delivered from the
    PMV, consulted during execution so every result tuple — duplicates
    included — reaches the user exactly once. *)

open Minirel_storage

type t

val create : unit -> t
val add : t -> Tuple.t -> unit

(** Remove one occurrence; [false] when absent. *)
val remove_one : t -> Tuple.t -> bool

val mem : t -> Tuple.t -> bool
val size : t -> int
val is_empty : t -> bool
val clear : t -> unit
