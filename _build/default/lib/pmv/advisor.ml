(* Trace-driven PMV selection — the PMV counterpart of the automatic
   MV-selection tools the paper discusses in Section 2.2 [2, 33].

   The advisor observes a query trace, keeps per-template statistics
   (query counts, bcp reference frequencies, result sizes) and then
   recommends which templates deserve a PMV under a global storage
   budget: templates are ranked by traffic, the budget is split
   proportionally, F comes from the observed results-per-bcp, and the
   expected usefulness of each view is estimated from the trace's bcp
   concentration (what fraction of bcp references the hottest L bcps
   would have absorbed). *)

open Minirel_storage
open Minirel_query

type template_stats = {
  compiled : Template.compiled;
  mutable queries : int;
  mutable total_h : int;  (* condition parts across all queries *)
  mutable bcp_refs : int;  (* bcp references recorded *)
  bcp_counts : int ref Bcp.Table.t;  (* reference count per bcp *)
  mutable result_tuples : int;  (* results observed via samples *)
  mutable result_bytes : int;
  mutable sampled_queries : int;  (* queries that came with a result sample *)
}

type t = {
  templates : (string, template_stats) Hashtbl.t;
  mutable observed : int;  (* total queries in the trace *)
}

let create () = { templates = Hashtbl.create 16; observed = 0 }

let n_observed t = t.observed
let n_templates t = Hashtbl.length t.templates

(* Record one query (and optionally a sample of its result tuples). *)
let observe ?(result_sample = []) t instance =
  t.observed <- t.observed + 1;
  let compiled = Instance.compiled instance in
  let name = compiled.Template.spec.Template.name in
  let st =
    match Hashtbl.find_opt t.templates name with
    | Some st -> st
    | None ->
        let st =
          {
            compiled;
            queries = 0;
            total_h = 0;
            bcp_refs = 0;
            bcp_counts = Bcp.Table.create 256;
            result_tuples = 0;
            result_bytes = 0;
            sampled_queries = 0;
          }
        in
        Hashtbl.replace t.templates name st;
        st
  in
  st.queries <- st.queries + 1;
  let cps = Condition_part.decompose instance in
  st.total_h <- st.total_h + List.length cps;
  List.iter
    (fun cp ->
      let bcp = Condition_part.bcp cp in
      st.bcp_refs <- st.bcp_refs + 1;
      match Bcp.Table.find_opt st.bcp_counts bcp with
      | Some r -> incr r
      | None -> Bcp.Table.replace st.bcp_counts bcp (ref 1))
    cps;
  if result_sample <> [] then begin
    st.sampled_queries <- st.sampled_queries + 1;
    List.iter
      (fun tuple ->
        st.result_tuples <- st.result_tuples + 1;
        st.result_bytes <- st.result_bytes + Tuple.size_bytes tuple)
      result_sample
  end

let avg_tuple_bytes st =
  if st.result_tuples = 0 then 64 else st.result_bytes / st.result_tuples

(* Fraction of recorded bcp references that the [l] most referenced
   bcps account for — a proxy for the hit rate a view of capacity [l]
   would have achieved on this trace. *)
let concentration st ~l =
  if st.bcp_refs = 0 then 0.0
  else begin
    let counts = Bcp.Table.fold (fun _ r acc -> !r :: acc) st.bcp_counts [] in
    let sorted = List.sort (fun a b -> Int.compare b a) counts in
    let rec take n acc = function
      | [] -> acc
      | _ when n = 0 -> acc
      | c :: rest -> take (n - 1) (acc + c) rest
    in
    float_of_int (take l 0 sorted) /. float_of_int st.bcp_refs
  end

type recommendation = {
  template : Template.compiled;
  queries_seen : int;
  share : float;  (* of the whole trace *)
  suggested_f : int;
  suggested_ub : int;  (* bytes of the global budget *)
  suggested_capacity : int;  (* entries, via the Section 3.2 rule *)
  trace_hit_estimate : float;  (* concentration at the suggested capacity *)
}

(* Recommend PMVs under [budget_bytes], most valuable first. Templates
   with fewer than [min_queries] trace appearances are skipped. *)
let recommend ?(max_views = 8) ?(min_queries = 2) ?(f_max = 4) t ~budget_bytes =
  if budget_bytes <= 0 then invalid_arg "Advisor.recommend: budget must be positive";
  let ranked =
    Hashtbl.fold (fun _ st acc -> st :: acc) t.templates []
    |> List.filter (fun st -> st.queries >= min_queries)
    |> List.sort (fun a b -> Int.compare b.queries a.queries)
    |> List.filteri (fun i _ -> i < max_views)
  in
  let total_queries = List.fold_left (fun acc st -> acc + st.queries) 0 ranked in
  if total_queries = 0 then []
  else
    List.map
      (fun st ->
        let share = float_of_int st.queries /. float_of_int total_queries in
        let ub = int_of_float (share *. float_of_int budget_bytes) in
        (* F: the typical per-bcp result volume observed in the trace
           (mean results per sampled query / mean h per query), bounded
           to keep hit probability high (Section 3.2's tradeoff). *)
        let avg_results_per_bcp =
          if st.sampled_queries = 0 || st.total_h = 0 then 2
          else
            let per_query = float_of_int st.result_tuples /. float_of_int st.sampled_queries in
            let h_per_query = float_of_int st.total_h /. float_of_int st.queries in
            int_of_float (Float.round (per_query /. Float.max 1.0 h_per_query))
        in
        let suggested_f = max 1 (min f_max avg_results_per_bcp) in
        let capacity =
          Sizing.max_entries
            { Sizing.ub_bytes = max 1 ub; f_max = suggested_f; avg_tuple_bytes = avg_tuple_bytes st }
        in
        {
          template = st.compiled;
          queries_seen = st.queries;
          share = float_of_int st.queries /. float_of_int t.observed;
          suggested_f;
          suggested_ub = ub;
          suggested_capacity = capacity;
          trace_hit_estimate = concentration st ~l:capacity;
        })
      ranked

(* Create the recommended views in a manager. Returns how many were
   created (templates that already have one are skipped). *)
let apply t manager recs =
  ignore t;
  List.fold_left
    (fun created r ->
      let name = r.template.Template.spec.Template.name in
      match Manager.find manager ~template:name with
      | Some _ -> created
      | None ->
          ignore
            (Manager.create_view ~f_max:r.suggested_f ~capacity:r.suggested_capacity manager
               r.template);
          created + 1)
    0 recs

let pp_recommendation ppf r =
  Fmt.pf ppf "%s: %d queries (%.0f%% of trace), F=%d, UB=%dB, L=%d, est. trace hit %.2f"
    r.template.Template.spec.Template.name r.queries_seen (100. *. r.share) r.suggested_f
    r.suggested_ub r.suggested_capacity r.trace_hit_estimate
