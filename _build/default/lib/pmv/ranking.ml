(* Popularity ranking (the conclusion's "ranking query result tuples
   according to their popularity"): the PMV already tracks how often
   each basic condition part is referenced; result tuples inherit the
   popularity of their containing bcp. *)

open Minirel_storage
open Minirel_query

(* Lifetime reference count of the bcp containing [tuple]; 0 when the
   bcp is not (or no longer) cached. *)
let popularity view (tuple : Tuple.t) =
  let compiled = View.compiled view in
  let bcp = Condition_part.bcp_of_result compiled tuple in
  match Entry_store.find (View.store view) bcp with
  | Some entry -> entry.Entry_store.refs
  | None -> 0

(* Stable sort, most popular first. *)
let rank_results view tuples =
  let scored = List.map (fun t -> (popularity view t, t)) tuples in
  List.map snd (List.stable_sort (fun (a, _) (b, _) -> Int.compare b a) scored)

(* The hottest cached bcps with their reference counts, best first. *)
let top_bcps view ~k =
  let all =
    Entry_store.fold (View.store view)
      (fun acc e -> (e.Entry_store.e_bcp, e.Entry_store.refs) :: acc)
      []
  in
  let sorted = List.stable_sort (fun (_, a) (_, b) -> Int.compare b a) all in
  List.filteri (fun i _ -> i < k) sorted
