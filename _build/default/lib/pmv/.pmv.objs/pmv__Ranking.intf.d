lib/pmv/ranking.mli: Bcp Minirel_query Minirel_storage Tuple View
