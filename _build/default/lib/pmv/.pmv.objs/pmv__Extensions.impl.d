lib/pmv/extensions.ml: Answer Array Condition_part Entry_store Float Instance List Minirel_exec Minirel_query Minirel_storage Tuple Value View
