lib/pmv/ds.ml: Minirel_storage Tuple
