lib/pmv/manager.ml: Answer Fmt Instance List Maintain Minirel_cache Minirel_index Minirel_query Minirel_txn Option Sizing Template View
