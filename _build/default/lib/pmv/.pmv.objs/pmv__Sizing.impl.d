lib/pmv/sizing.ml:
