lib/pmv/entry_store.mli: Bcp Minirel_cache Minirel_query Minirel_storage Tuple
