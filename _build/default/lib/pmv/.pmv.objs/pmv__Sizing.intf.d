lib/pmv/sizing.mli:
