lib/pmv/answer.ml: Bcp Condition_part Ds Entry_store Fun Instance Int64 Io_stats List Minirel_exec Minirel_index Minirel_query Minirel_storage Minirel_txn Monotonic_clock View
