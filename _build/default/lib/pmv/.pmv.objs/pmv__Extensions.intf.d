lib/pmv/extensions.mli: Answer Instance Minirel_index Minirel_query Minirel_storage Minirel_txn Tuple View
