lib/pmv/advisor.mli: Fmt Instance Manager Minirel_query Minirel_storage Template
