lib/pmv/ds.mli: Minirel_storage Tuple
