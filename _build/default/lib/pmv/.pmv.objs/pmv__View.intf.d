lib/pmv/view.mli: Bcp Entry_store Minirel_cache Minirel_query Minirel_storage Minirel_txn Template Tuple
