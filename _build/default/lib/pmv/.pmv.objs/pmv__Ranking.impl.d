lib/pmv/ranking.ml: Condition_part Entry_store Int List Minirel_query Minirel_storage Tuple View
