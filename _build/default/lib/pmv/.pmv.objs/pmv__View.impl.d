lib/pmv/view.ml: Array Bcp Condition_part Entry_store List Minirel_cache Minirel_query Minirel_storage Minirel_txn Schema Template Tuple
