lib/pmv/manager.mli: Answer Fmt Instance Minirel_cache Minirel_index Minirel_query Minirel_storage Minirel_txn Template View
