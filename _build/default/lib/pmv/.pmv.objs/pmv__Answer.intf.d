lib/pmv/answer.mli: Instance Minirel_index Minirel_query Minirel_storage Minirel_txn Tuple View
