lib/pmv/maintain.mli: Minirel_index Minirel_query Minirel_storage Minirel_txn View
