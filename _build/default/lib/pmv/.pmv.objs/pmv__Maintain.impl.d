lib/pmv/maintain.ml: Array Condition_part Entry_store Fun Int List Minirel_exec Minirel_index Minirel_query Minirel_storage Minirel_txn Predicate Schema Template Value View
