lib/pmv/entry_store.ml: Bcp List Minirel_cache Minirel_query Minirel_storage Tuple
