lib/pmv/advisor.ml: Bcp Condition_part Float Fmt Hashtbl Instance Int List Manager Minirel_query Minirel_storage Sizing Template Tuple
