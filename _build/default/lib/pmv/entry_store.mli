(** Bounded storage for PMV entries (Section 3.2): a hash table from
    basic condition part to its cached result tuples — the paper's
    "index I on bcp" — with residency governed by a pluggable
    replacement policy (CLOCK by default, 2Q per Section 3.5) and at
    most F tuples per bcp. The entry table and the policy stay in lock
    step: an entry exists iff its bcp is resident; evictions drop the
    entry and report each dropped tuple through [on_change]. *)

open Minirel_storage
open Minirel_query

type entry = {
  e_bcp : Bcp.t;
  mutable tuples : Tuple.t list;  (** most recently cached first; length <= F *)
  mutable n : int;
  mutable refs : int;  (** lifetime references; feeds popularity ranking *)
}

type change = Added | Removed

type t

(** @raise Invalid_argument if [f_max <= 0] or [capacity <= 0]. *)
val create :
  ?policy:Minirel_cache.Policies.kind -> capacity:int -> f_max:int -> unit -> t

(** Observe every cached-tuple addition and removal (fills, deferred
    maintenance, evictions); used to maintain auxiliary indexes. *)
val set_on_change : t -> (change -> Bcp.t -> Tuple.t -> unit) -> unit

val f_max : t -> int
val capacity : t -> int
val n_entries : t -> int
val n_tuples : t -> int

(** Current bytes of cached tuples (excluding the bcp index side). *)
val tuple_bytes : t -> int

val policy_name : t -> string
val policy_stats : t -> Minirel_cache.Cache_stats.t

(** Pure lookup: no recency update, no admission. *)
val find : t -> Bcp.t -> entry option

(** One query-time reference (Operation O2): [`Resident entry] serves;
    [`Admitted entry] is 2Q's ghost promotion (empty entry, to be
    filled by this query's O3); [`Rejected storable] is a miss —
    [storable] tells whether O3 may admit the bcp when a result tuple
    materialises ({!admit_for_fill}). *)
val reference : t -> Bcp.t -> [ `Resident of entry | `Admitted of entry | `Rejected of bool ]

(** Operation O3 admission: make the bcp resident (possibly purging a
    victim) and return its (possibly fresh, empty) entry. *)
val admit_for_fill : t -> Bcp.t -> entry

(** Cache one result tuple, respecting the per-bcp bound F; [false]
    when the entry is full. *)
val add_tuple : t -> entry -> Tuple.t -> bool

(** Remove one occurrence from the bcp's entry (deferred maintenance);
    entries may become empty but keep their slot until evicted. *)
val remove_tuple : t -> Bcp.t -> Tuple.t -> bool

(** Remove every cached tuple satisfying the predicate; returns the
    count. Conservative auxiliary-maintenance path. *)
val remove_matching : t -> (Tuple.t -> bool) -> int

(** Drop an entry and its residency entirely. *)
val drop_entry : t -> Bcp.t -> unit

val iter : t -> (entry -> unit) -> unit
val fold : t -> ('a -> entry -> 'a) -> 'a -> 'a

(** The Section 3.2 bounds: entries <= L, tuples <= L*F, every entry
    consistent. *)
val invariants_ok : t -> bool
