(** Extensions from Section 3.6: DISTINCT, aggregates, early
    termination, and EXISTS-style nested queries, built on the same
    O1/O2/O3 machinery. *)

open Minirel_storage
open Minirel_query

(** {1 DISTINCT} *)

(** Answer with set semantics: each distinct result tuple is delivered
    exactly once, cached tuples first. Returns the answer statistics
    and the number of distinct tuples delivered. *)
val answer_distinct :
  ?locks:Minirel_txn.Lock_manager.t ->
  ?txn:int ->
  view:View.t ->
  Minirel_index.Catalog.t ->
  Instance.t ->
  on_tuple:(Answer.phase -> Tuple.t -> unit) ->
  Answer.stats * int

(** {1 Aggregates (group by)} *)

type agg =
  | Count
  | Sum of int  (** position within the Ls' tuple *)
  | Avg of int
  | Min_agg of int
  | Max_agg of int

type grouped = {
  partial_groups : (Tuple.t * float) list;
      (** early, approximate: aggregated over the PMV-cached subset *)
  exact_groups : (Tuple.t * float) list;  (** the final answer *)
  answer_stats : Answer.stats;
}

(** Group-by aggregation with early partial aggregates; [group_by] and
    the aggregate position index into the Ls' result tuple. The partial
    groups summarise only the hot cached tuples and are delivered as
    approximate, per the paper's adjusted user interface. *)
val answer_grouped :
  ?locks:Minirel_txn.Lock_manager.t ->
  ?txn:int ->
  view:View.t ->
  Minirel_index.Catalog.t ->
  Instance.t ->
  group_by:int array ->
  agg:agg ->
  grouped

(** {1 ORDER BY} *)

type ordered = {
  early_sorted : Tuple.t list;
      (** the PMV-served subset, sorted — an immediate hot preview *)
  final_sorted : Tuple.t list;  (** the full sorted answer *)
  ordered_stats : Answer.stats;
}

(** Answer a query with an ORDER BY over the Ls'-tuple positions
    [order_by] (Section 3.6's adjusted interface): a sorted preview of
    the cached tuples is available before execution; the exact sorted
    result follows. *)
val answer_ordered :
  ?locks:Minirel_txn.Lock_manager.t ->
  ?txn:int ->
  view:View.t ->
  Minirel_index.Catalog.t ->
  Instance.t ->
  order_by:int array ->
  ?desc:bool ->
  unit ->
  ordered

(** {1 Early termination (Benefit 2)} *)

exception Stop

(** The first [k] result tuples (hot ones first), terminating the query
    early once they are in hand. @raise Invalid_argument if [k <= 0]. *)
val answer_first_k :
  ?locks:Minirel_txn.Lock_manager.t ->
  ?txn:int ->
  view:View.t ->
  Minirel_index.Catalog.t ->
  Instance.t ->
  k:int ->
  Tuple.t list

(** {1 EXISTS nested queries} *)

(** Witness check for an EXISTS subquery: [true, `From_pmv] when the
    subquery's PMV caches a satisfying tuple (pure lookups, no engine
    work); otherwise executes just far enough to find one tuple. *)
val exists_ :
  view:View.t ->
  Minirel_index.Catalog.t ->
  Instance.t ->
  bool * [ `From_pmv | `Executed ]

(** Filter [candidates] by an EXISTS subquery built per candidate,
    short-circuiting through the subquery's PMV. Returns the kept
    candidates and how many checks the PMV answered. *)
val filter_exists :
  view:View.t ->
  Minirel_index.Catalog.t ->
  candidates:'a list ->
  subquery_of:('a -> Instance.t) ->
  'a list * int
