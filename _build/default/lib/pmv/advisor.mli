(** Trace-driven PMV selection — the PMV counterpart of the automatic
    MV-selection tools the paper discusses in Section 2.2. Observe a
    query trace, then recommend which templates deserve a PMV under a
    global storage budget: ranked by traffic, budget split
    proportionally, F from observed results-per-bcp, and expected
    usefulness estimated from the trace's bcp concentration. *)

open Minirel_query

type t

val create : unit -> t
val n_observed : t -> int
val n_templates : t -> int

(** Record one query; [result_sample] (some or all of its result
    tuples) refines the F and At estimates. *)
val observe : ?result_sample:Minirel_storage.Tuple.t list -> t -> Instance.t -> unit

type recommendation = {
  template : Template.compiled;
  queries_seen : int;
  share : float;  (** of the whole trace *)
  suggested_f : int;
  suggested_ub : int;  (** bytes of the global budget *)
  suggested_capacity : int;  (** entries, via the Section 3.2 rule *)
  trace_hit_estimate : float;
      (** fraction of trace bcp references the hottest
          [suggested_capacity] bcps account for *)
}

(** Recommendations under [budget_bytes], most valuable first;
    templates seen fewer than [min_queries] times are skipped.
    @raise Invalid_argument on a non-positive budget. *)
val recommend :
  ?max_views:int -> ?min_queries:int -> ?f_max:int -> t -> budget_bytes:int ->
  recommendation list

(** Create the recommended views in a manager (skipping templates that
    already have one); returns how many were created. *)
val apply : t -> Manager.t -> recommendation list -> int

val pp_recommendation : recommendation Fmt.t
