(* Bounded storage for PMV entries (Section 3.2): a hash table from
   basic condition part to its cached result tuples — the "index I on
   bcp" — with residency governed by a pluggable replacement policy
   (CLOCK by default, 2Q per Section 3.5) and at most F tuples per bcp.

   The entry table and the policy are kept in lock step: an entry exists
   iff its bcp is resident in the policy; eviction drops the entry (and
   reports each dropped tuple through [on_change], so auxiliary
   maintenance indexes stay consistent). *)

open Minirel_storage
open Minirel_query

type entry = {
  e_bcp : Bcp.t;
  mutable tuples : Tuple.t list;  (* most recently cached first; <= f_max *)
  mutable n : int;
  mutable refs : int;  (* lifetime references; feeds popularity ranking *)
}

type change = Added | Removed

type t = {
  table : entry Bcp.Table.t;
  policy : Bcp.t Minirel_cache.Policy.t;
  f_max : int;
  mutable n_tuples : int;
  mutable tuple_bytes : int;
  mutable on_change : change -> Bcp.t -> Tuple.t -> unit;
}

let create ?(policy = Minirel_cache.Policies.Clock) ~capacity ~f_max () =
  if f_max <= 0 then invalid_arg "Entry_store.create: f_max must be positive";
  let t =
    {
      table = Bcp.Table.create (2 * capacity);
      policy = Minirel_cache.Policies.make policy ~capacity;
      f_max;
      n_tuples = 0;
      tuple_bytes = 0;
      on_change = (fun _ _ _ -> ());
    }
  in
  Minirel_cache.Policy.set_on_evict t.policy (fun bcp ->
      match Bcp.Table.find_opt t.table bcp with
      | None -> ()
      | Some entry ->
          Bcp.Table.remove t.table bcp;
          t.n_tuples <- t.n_tuples - entry.n;
          List.iter
            (fun tuple ->
              t.tuple_bytes <- t.tuple_bytes - Tuple.size_bytes tuple;
              t.on_change Removed bcp tuple)
            entry.tuples);
  t

let set_on_change t f = t.on_change <- f

let f_max t = t.f_max
let capacity t = Minirel_cache.Policy.capacity t.policy
let n_entries t = Bcp.Table.length t.table
let n_tuples t = t.n_tuples
let tuple_bytes t = t.tuple_bytes
let policy_name t = Minirel_cache.Policy.name t.policy
let policy_stats t = Minirel_cache.Policy.stats t.policy

(* Pure lookup: no recency update, no admission. *)
let find t bcp = Bcp.Table.find_opt t.table bcp

(* One query-time reference of [bcp] (Operation O2).

   - [`Resident]: the entry is in the PMV; serve its tuples.
   - [`Admitted]: 2Q promoted the bcp from its ghost queue; an empty
     entry was created, to be filled with this query's O3 results.
   - [`Rejected storable]: not resident. With a fill-admitting policy
     (CLOCK/LRU/FIFO) [storable] is true and Operation O3 may admit the
     bcp when its first result tuple materialises ([admit_for_fill]);
     under 2Q the reference was only recorded in A1 and no tuples may
     be stored this time. *)
let reference t bcp =
  match Minirel_cache.Policy.reference t.policy bcp with
  | `Resident -> (
      match Bcp.Table.find_opt t.table bcp with
      | Some entry ->
          entry.refs <- entry.refs + 1;
          `Resident entry
      | None ->
          (* policy and table out of sync: impossible by construction *)
          assert false)
  | `Admitted ->
      let entry = { e_bcp = bcp; tuples = []; n = 0; refs = 1 } in
      Bcp.Table.replace t.table bcp entry;
      `Admitted entry
  | `Rejected -> `Rejected (Minirel_cache.Policy.admit_on_fill t.policy)

(* Operation O3 admission: a result tuple belonging to a non-resident
   bcp arrived and the policy admits on fill — "a new basic condition
   part bcp_j is added into V_PM", possibly purging a victim. *)
let admit_for_fill t bcp =
  Minirel_cache.Policy.admit t.policy bcp;
  match Bcp.Table.find_opt t.table bcp with
  | Some entry -> entry
  | None ->
      let entry = { e_bcp = bcp; tuples = []; n = 0; refs = 1 } in
      Bcp.Table.replace t.table bcp entry;
      entry

(* Cache one result tuple under [entry] (Operation O3), respecting the
   per-bcp bound F. *)
let add_tuple t entry tuple =
  if entry.n >= t.f_max then false
  else begin
    entry.tuples <- tuple :: entry.tuples;
    entry.n <- entry.n + 1;
    t.n_tuples <- t.n_tuples + 1;
    t.tuple_bytes <- t.tuple_bytes + Tuple.size_bytes tuple;
    t.on_change Added entry.e_bcp tuple;
    true
  end

(* Remove one occurrence of [tuple] from the entry of [bcp] (deferred
   maintenance). Entries may legitimately become empty; they keep their
   slot until evicted, mirroring a bcp whose hot tuples were deleted. *)
let remove_tuple t bcp tuple =
  match Bcp.Table.find_opt t.table bcp with
  | None -> false
  | Some entry ->
      let removed = ref false in
      entry.tuples <-
        List.filter
          (fun cached ->
            if (not !removed) && Tuple.equal cached tuple then begin
              removed := true;
              false
            end
            else true)
          entry.tuples;
      if !removed then begin
        entry.n <- entry.n - 1;
        t.n_tuples <- t.n_tuples - 1;
        t.tuple_bytes <- t.tuple_bytes - Tuple.size_bytes tuple;
        t.on_change Removed bcp tuple
      end;
      !removed

(* Remove every cached tuple satisfying [victim]; returns the count.
   Used by the conservative auxiliary-index maintenance path. *)
let remove_matching t victim =
  let removed = ref 0 in
  let entries = Bcp.Table.fold (fun _ e acc -> e :: acc) t.table [] in
  List.iter
    (fun entry ->
      let keep, drop = List.partition (fun tuple -> not (victim tuple)) entry.tuples in
      if drop <> [] then begin
        entry.tuples <- keep;
        entry.n <- List.length keep;
        List.iter
          (fun tuple ->
            incr removed;
            t.n_tuples <- t.n_tuples - 1;
            t.tuple_bytes <- t.tuple_bytes - Tuple.size_bytes tuple;
            t.on_change Removed entry.e_bcp tuple)
          drop
      end)
    entries;
  !removed

let drop_entry t bcp =
  (match Bcp.Table.find_opt t.table bcp with
  | None -> ()
  | Some entry ->
      Bcp.Table.remove t.table bcp;
      t.n_tuples <- t.n_tuples - entry.n;
      List.iter
        (fun tuple ->
          t.tuple_bytes <- t.tuple_bytes - Tuple.size_bytes tuple;
          t.on_change Removed bcp tuple)
        entry.tuples);
  Minirel_cache.Policy.remove t.policy bcp

let iter t f = Bcp.Table.iter (fun _ entry -> f entry) t.table

let fold t f init =
  let acc = ref init in
  iter t (fun e -> acc := f !acc e);
  !acc

(* Paper invariant (Section 3.2): L*F*At bounds the PMV footprint. *)
let invariants_ok t =
  n_entries t <= capacity t
  && t.n_tuples <= capacity t * t.f_max
  && fold t (fun ok e -> ok && e.n <= t.f_max && e.n = List.length e.tuples) true
