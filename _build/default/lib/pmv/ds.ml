(* The temporary in-memory structure DS of Operation O2/O3 (Section
   3.3): a multiset of the result tuples already delivered from the PMV.
   O3 consults it to deliver every result tuple to the user exactly
   once, including duplicates ("if t is not removed from DS and later
   another tuple t' = t comes, the user can miss some result tuples"). *)

open Minirel_storage

type t = { counts : int ref Tuple.Table.t; mutable size : int }

let create () = { counts = Tuple.Table.create 64; size = 0 }

let add t tuple =
  (match Tuple.Table.find_opt t.counts tuple with
  | Some r -> incr r
  | None -> Tuple.Table.replace t.counts tuple (ref 1));
  t.size <- t.size + 1

(* Remove one occurrence; false if the tuple is absent. *)
let remove_one t tuple =
  match Tuple.Table.find_opt t.counts tuple with
  | None -> false
  | Some r ->
      if !r <= 1 then Tuple.Table.remove t.counts tuple else decr r;
      t.size <- t.size - 1;
      true

let mem t tuple = Tuple.Table.mem t.counts tuple
let size t = t.size
let is_empty t = t.size = 0

let clear t =
  Tuple.Table.reset t.counts;
  t.size <- 0
