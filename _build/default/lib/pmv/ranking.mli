(** Popularity ranking (the conclusion's extension): result tuples
    inherit the lifetime reference count of their containing basic
    condition part. *)

open Minirel_storage
open Minirel_query

(** 0 when the tuple's bcp is not (or no longer) cached. *)
val popularity : View.t -> Tuple.t -> int

(** Stable sort, most popular first. *)
val rank_results : View.t -> Tuple.t list -> Tuple.t list

(** The hottest cached bcps with their reference counts, best first. *)
val top_bcps : View.t -> k:int -> (Bcp.t * int) list
