(* Sizing rules from Section 3.2 and the Section 4.1 accounting:

     L * F * At <= UB           (entries x tuples-per-entry x bytes)

   plus the simulation study's conventions: a bcp costs 4% of its F
   tuples' storage, and matching the CLOCK and 2Q budgets means
   L = 1.02 * N (2Q spends 0.02N-worth of budget on A1 ghosts). *)

type t = {
  ub_bytes : int;  (* the DBA's storage upper bound UB *)
  f_max : int;  (* F: max result tuples cached per bcp *)
  avg_tuple_bytes : int;  (* At, e.g. measured over a result sample *)
}

let bcp_overhead_fraction = 0.04

(* Max entry count L under the budget: UB / (F*At * (1 + 4%)). *)
let max_entries t =
  if t.ub_bytes <= 0 || t.f_max <= 0 || t.avg_tuple_bytes <= 0 then
    invalid_arg "Sizing.max_entries: all parameters must be positive";
  let per_entry =
    float_of_int (t.f_max * t.avg_tuple_bytes) *. (1.0 +. bcp_overhead_fraction)
  in
  max 1 (int_of_float (float_of_int t.ub_bytes /. per_entry))

(* Equal-budget 2Q Am size: L = 1.02 * N (Section 4.1). *)
let two_q_am_of_clock_l l = max 1 (int_of_float (float_of_int l /. 1.02))

(* The paper's example: L = 10K entries, F = 2, At = 50 B -> <= ~1 MB,
   "the memory can hold many PMVs". *)
let footprint_bytes ~l ~f_max ~avg_tuple_bytes =
  int_of_float
    (float_of_int (l * f_max * avg_tuple_bytes) *. (1.0 +. bcp_overhead_fraction))
