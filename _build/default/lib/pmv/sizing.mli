(** Sizing rules from Sections 3.2 and 4.1: [L * F * At <= UB], a bcp
    costs 4% of its F tuples' storage, and matching CLOCK and 2Q
    budgets means L = 1.02 N. *)

type t = {
  ub_bytes : int;  (** the DBA's storage upper bound UB *)
  f_max : int;  (** F: max cached result tuples per bcp *)
  avg_tuple_bytes : int;  (** At, e.g. measured over a result sample *)
}

val bcp_overhead_fraction : float

(** Maximum entry count L under the budget.
    @raise Invalid_argument on non-positive parameters. *)
val max_entries : t -> int

(** Equal-budget 2Q Am size for a CLOCK capacity L (Section 4.1). *)
val two_q_am_of_clock_l : int -> int

(** Bytes used by [l] entries of [f_max] tuples averaging
    [avg_tuple_bytes], bcp side included — the paper's example:
    L=10K, F=2, At=50B is about 1 MB. *)
val footprint_bytes : l:int -> f_max:int -> avg_tuple_bytes:int -> int
