(* pmvctl: a small demonstration CLI over the library.

   Subcommands:
     demo     generate a TPC-R-shaped database, attach a PMV to template
              T1 and stream a query workload, printing periodic stats
     query    answer a single T1 query (dates/suppliers from the CLI),
              showing partial results arriving before execution results
     simulate run one hit-probability simulation cell
     trace    print the stitched span tree of one traced query
     flight   dump the flight recorder after a (faulted) workload

   Examples:
     pmvctl demo --scale 0.02 --queries 500 --policy 2q
     pmvctl query --dates 3,7 --suppliers 2 --scale 0.01
     pmvctl simulate --alpha 1.07 --h 2 --n 2000
     pmvctl trace --shards 4 --domains 4 --probe-path epoch
     pmvctl flight --fault maintain.apply --queries 50
*)

open Minirel_storage
module Catalog = Minirel_index.Catalog
module Template = Minirel_query.Template
module Instance = Minirel_query.Instance
module Tpcr = Minirel_workload.Tpcr
module Querygen = Minirel_workload.Querygen
module Zipf = Minirel_workload.Zipf
module SM = Minirel_prng.Split_mix
module Shell = Minirel_shell.Shell
module Engine = Minirel_engine.Engine
module Router = Minirel_engine.Shard_router
module Pool = Minirel_parallel.Pool
module Span = Minirel_telemetry.Span
module Tracer = Minirel_telemetry.Tracer
module Flight = Minirel_telemetry.Flight
module Fault = Minirel_fault.Fault

(* Run [f] with a Domain pool of [domains] workers (None when 1 —
   everything stays sequential), shutting the pool down on the way
   out. The scheduler counters register against the default registry
   so `pmvctl metrics`-style snapshots show pool.sched.* alongside the
   engine sources. *)
let with_pool ~domains f =
  if domains >= 2 then begin
    let pool = Pool.create ~domains in
    Pool.register_telemetry pool Minirel_telemetry.Registry.default;
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f (Some pool))
  end
  else f None

let build ~scale ~seed =
  let pool = Buffer_pool.create ~capacity:4_000 () in
  let catalog = Catalog.create pool in
  let params = Tpcr.params_for_scale ~seed scale in
  let counts = Tpcr.generate catalog params in
  Fmt.pr "generated: %d customers, %d orders, %d lineitems (dates 1..%d, suppliers 1..%d)@."
    counts.Tpcr.customers counts.Tpcr.orders counts.Tpcr.lineitems params.Tpcr.n_dates
    params.Tpcr.n_suppliers;
  (catalog, params, Template.compile catalog Querygen.t1_spec)

(* Hash-partition the TPC-R join relations by their join key (orders
   and lineitem by orderkey, so T1 joins run shard-locally), replicate
   the customer dimension, and split [catalog] across [shards]
   engines. *)
let shard_tpcr ~shards catalog =
  let router = Router.create ~shards () in
  List.iter
    (fun rel -> Router.declare router (Catalog.schema catalog rel) ~part:(`Hash "orderkey"))
    [ "orders"; "lineitem" ];
  Router.declare router (Catalog.schema catalog "customer") ~part:`Replicated;
  Router.load_from router catalog;
  Fmt.pr "sharded: %d engines, orders/lineitem hash-partitioned by orderkey@." shards;
  router

let demo scale seed queries policy f_max capacity =
  let catalog, params, t1 = build ~scale ~seed in
  let policy =
    match Minirel_cache.Policies.of_string policy with
    | Some p -> p
    | None -> Minirel_cache.Policies.Clock
  in
  let engine = Engine.create ~catalog () in
  let view = Pmv.Manager.create_view ~policy ~capacity ~f_max (Engine.manager engine) t1 in
  let dz = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07 in
  let sz = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07 in
  let rng = SM.create ~seed:(seed + 1) in
  Fmt.pr "@.%-8s %-10s %-10s %-10s %-12s@." "queries" "hit ratio" "bcps" "tuples" "partials";
  for i = 1 to queries do
    let q = Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng in
    ignore (Engine.answer engine q ~on_tuple:(fun _ _ -> ()));
    if i mod (max 1 (queries / 10)) = 0 then
      Fmt.pr "%-8d %-10.3f %-10d %-10d %-12d@." i (Pmv.View.hit_ratio view)
        (Pmv.View.n_entries view) (Pmv.View.n_tuples view)
        (Pmv.View.stats view).Pmv.View.partial_tuples
  done;
  Fmt.pr "@.PMV footprint: ~%d bytes (policy %s, F=%d, capacity %d)@."
    (Pmv.View.size_bytes view)
    (Minirel_cache.Policies.to_string policy)
    f_max capacity

let parse_ints s =
  String.split_on_char ',' s
  |> List.filter_map (fun x ->
         match int_of_string_opt (String.trim x) with
         | Some v -> Some (Value.Int v)
         | None -> None)

let query scale seed dates suppliers =
  let catalog, _params, t1 = build ~scale ~seed in
  let engine = Engine.create ~catalog () in
  ignore (Engine.ensure_view ~capacity:1_000 ~f_max:3 engine t1);
  let dates = parse_ints dates and suppliers = parse_ints suppliers in
  if dates = [] || suppliers = [] then begin
    Fmt.epr "need at least one date and one supplier@.";
    exit 2
  end;
  let inst = Instance.make t1 [| Instance.Dvalues dates; Instance.Dvalues suppliers |] in
  let show label =
    Fmt.pr "@.-- %s@." label;
    let st, _ =
      Engine.answer engine inst ~on_tuple:(fun phase t ->
          let tag = match phase with Pmv.Answer.Partial -> "partial" | _ -> "exec" in
          Fmt.pr "  [%s] %a@." tag Tuple.pp (Template.visible_of_result t1 t))
    in
    Fmt.pr "  %d results (%d before execution); overhead %.1f µs@." st.Pmv.Answer.total_count
      st.Pmv.Answer.partial_count
      (Int64.to_float st.Pmv.Answer.overhead_ns /. 1e3)
  in
  show "first run (cold PMV)";
  show "second run (hot results come back instantly)"

let simulate alpha h n policy =
  let policy =
    match Minirel_cache.Policies.of_string policy with
    | Some p -> p
    | None -> Minirel_cache.Policies.Clock
  in
  let cfg = { Pmv_sim.Hitprob.scaled_default with alpha; h; n; policy } in
  let r = Pmv_sim.Hitprob.run cfg in
  Fmt.pr "universe=%d N=%d alpha=%.2f h=%d policy=%s -> hit probability %.4f@."
    cfg.Pmv_sim.Hitprob.universe n alpha h
    (Minirel_cache.Policies.to_string policy)
    r.Pmv_sim.Hitprob.hit_prob

(* Drive a short T1 workload through the full stack — one engine, or
   [shards] hash-partitioned engines with merged streams — then dump
   the telemetry in the requested format. Sharded prom output labels
   every series with its shard; text and json report the merged view
   (counters/gauges summed, histogram summaries merged). *)
let metrics scale seed queries format shards domains probe_path =
  let catalog, params, t1 = build ~scale ~seed in
  let dz = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07 in
  let sz = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07 in
  let rng = SM.create ~seed:(seed + 1) in
  let gen () = Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng in
  with_pool ~domains @@ fun par ->
  if shards <= 1 then begin
    (* the engine shares Registry.default, where with_pool registered
       pool.sched — the snapshot carries the scheduler counters *)
    let engine = Engine.create ~catalog () in
    Engine.set_parallel engine par;
    Engine.set_probe_path engine probe_path;
    ignore (Engine.ensure_view ~capacity:2_000 ~f_max:3 engine t1);
    for _ = 1 to queries do
      ignore (Engine.answer engine (gen ()) ~on_tuple:(fun _ _ -> ()))
    done;
    let snapshot = Engine.snapshot engine in
    match format with
    | "prom" -> print_string (Minirel_telemetry.Export.prometheus_string snapshot)
    | "json" -> print_endline (Minirel_telemetry.Export.json_string snapshot)
    | _ -> Fmt.pr "%a@." Minirel_telemetry.Registry.pp_snapshot snapshot
  end
  else begin
    let router = shard_tpcr ~shards catalog in
    Router.set_probe_path router probe_path;
    Router.set_parallel router par;
    (* shards have scoped registries; put pool.sched on shard 0 so the
       merged snapshot (and prom export) carries it *)
    Option.iter
      (fun p -> Pool.register_telemetry p (Engine.registry (Router.shard router 0)))
      par;
    ignore (Router.create_view ~capacity:2_000 ~f_max:3 router t1);
    for _ = 1 to queries do
      ignore (Router.answer router (gen ()) ~on_tuple:(fun _ _ -> ()))
    done;
    match format with
    | "prom" -> print_string (Router.prometheus_string router)
    | "json" ->
        print_endline (Minirel_telemetry.Export.json_string (Router.snapshot_merged router))
    | _ ->
        Fmt.pr "merged over %d shards@.%a@." shards Minirel_telemetry.Registry.pp_snapshot
          (Router.snapshot_merged router)
  end

(* --trace-sample N [--trace-seed S]: 1-in-N stratified span sampling on
   [engine]'s tracer, reproducible from the seed — the same seed always
   selects the same ticks. N = 1 traces every query. *)
let apply_trace_sampling engine sample tseed =
  match sample with
  | None -> ()
  | Some every ->
      Tracer.set_sampling
        ?seed:(Option.map Int64.of_int tseed)
        (Engine.tracer engine) ~every

(* Answer a seeded T1 workload and print the final query's stitched
   span tree: one tree per query even across the sharded parallel
   fan-out — per-shard subtrees annotated with shard/domain/worker,
   probe-path attribution on every answer span. *)
let trace scale seed queries shards domains probe_path sample tseed =
  let catalog, params, t1 = build ~scale ~seed in
  let dz = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07 in
  let sz = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07 in
  let rng = SM.create ~seed:(seed + 1) in
  let gen () = Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng in
  with_pool ~domains @@ fun par ->
  (* [e] owns the tracer the root span opens on (shard 0 when sharded) *)
  let e, answer =
    if shards <= 1 then begin
      let engine = Engine.create ~catalog () in
      Engine.set_parallel engine par;
      Engine.set_probe_path engine probe_path;
      ignore (Engine.ensure_view ~capacity:2_000 ~f_max:3 engine t1);
      (engine, fun ?trace q ~on_tuple -> Engine.answer ?trace engine q ~on_tuple)
    end
    else begin
      let router = shard_tpcr ~shards catalog in
      Router.set_parallel router par;
      Router.set_probe_path router probe_path;
      ignore (Router.create_view ~capacity:2_000 ~f_max:3 router t1);
      (Router.shard router 0, fun ?trace q ~on_tuple -> Router.answer ?trace router q ~on_tuple)
    end
  in
  apply_trace_sampling e sample tseed;
  for _ = 1 to max 0 (queries - 1) do
    ignore (answer (gen ()) ~on_tuple:(fun _ _ -> ()))
  done;
  Engine.force_next_trace e;
  let tr = Engine.trace_start e "select:t1" in
  let n = ref 0 in
  let stats, _ = answer ?trace:tr (gen ()) ~on_tuple:(fun _ _ -> incr n) in
  Option.iter (Engine.trace_finish e) tr;
  Fmt.pr "@.%d tuples (%d via O2), overhead %.1f µs, exec %.1f µs@." !n
    stats.Pmv.Answer.partial_count
    (Int64.to_float stats.Pmv.Answer.overhead_ns /. 1e3)
    (Int64.to_float stats.Pmv.Answer.exec_ns /. 1e3);
  match Engine.last_trace e with
  | Some tr -> Fmt.pr "@.%a" Span.pp_trace tr
  | None -> Fmt.pr "telemetry disabled — no trace recorded@."

(* Drive queries interleaved with lineitem inserts (so maintenance,
   publishes and — with --fault — failpoint hits land in the recorder),
   then dump the flight recorder: a merged, globally-ordered event log
   whose digest depends only on what happened, not when. *)
let flight scale seed queries shards domains probe_path fault_site =
  let catalog, params, t1 = build ~scale ~seed in
  let dz = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07 in
  let sz = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07 in
  let rng = SM.create ~seed:(seed + 1) in
  let gen () = Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng in
  let lineitem i =
    [|
      Value.Int (1_000_000 + i);
      Value.Int (1 + (i mod params.Tpcr.n_suppliers));
      Value.Int 1;
      Value.Int (1 + (i mod 50));
      Value.Float 100.0;
      Value.Str "";
    |]
  in
  with_pool ~domains @@ fun par ->
  Flight.reset ();
  let arm reg =
    match fault_site with
    | None -> ()
    | Some site ->
        Fault.enable_in ~seed reg;
        Fault.arm_in reg site Fault.Once
  in
  let answer, run_dml =
    if shards <= 1 then begin
      let engine = Engine.create ~catalog () in
      Engine.set_parallel engine par;
      Engine.set_probe_path engine probe_path;
      ignore (Engine.ensure_view ~capacity:2_000 ~f_max:3 engine t1);
      arm (Engine.fault engine);
      ( (fun q ~on_tuple -> ignore (Engine.answer engine q ~on_tuple)),
        fun changes -> ignore (Engine.run engine changes) )
    end
    else begin
      let router = shard_tpcr ~shards catalog in
      Router.set_parallel router par;
      Router.set_probe_path router probe_path;
      ignore (Router.create_view ~capacity:2_000 ~f_max:3 router t1);
      List.iter (fun e -> arm (Engine.fault e)) (Router.shards router);
      ( (fun q ~on_tuple -> ignore (Router.answer router q ~on_tuple)),
        fun changes -> ignore (Router.run router changes) )
    end
  in
  let faults = ref 0 in
  for i = 1 to queries do
    answer (gen ()) ~on_tuple:(fun _ _ -> ());
    if i mod 5 = 0 then
      (* an armed maintain.apply raises here: the view missed the step
         (stale drift, the torture driver's domain) — the recorder keeps
         the Fault_hit and the workload carries on *)
      try run_dml [ Minirel_txn.Txn.Insert { rel = "lineitem"; tuple = lineitem i } ]
      with Fault.Injected _ -> incr faults
  done;
  if !faults > 0 then Fmt.pr "%d injected fault(s) hit during DML@." !faults;
  Flight.record Flight.Dump_trigger ~a:(Flight.intern "pmvctl.flight");
  let events = Flight.dump () in
  Fmt.pr "%a@." Flight.pp_dump events

(* Run SQL statements against generated TPC-R data through the shell,
   one PMV per template (per shard when sharded). Each statement runs
   twice to show the warm-cache effect. *)
let sql scale seed shards domains probe_path statements =
  if statements = [] then begin
    Fmt.epr "pass one or more SQL statements as positional arguments@.";
    exit 2
  end;
  let catalog, _params, _t1 = build ~scale ~seed in
  with_pool ~domains @@ fun par ->
  let shell =
    if shards <= 1 then begin
      let shell = Shell.create catalog in
      Engine.set_parallel (Shell.engine shell) par;
      shell
    end
    else begin
      let router = shard_tpcr ~shards catalog in
      Router.set_parallel router par;
      Shell.of_router router
    end
  in
  Shell.set_probe_path shell probe_path;
  List.iter
    (fun stmt ->
      Fmt.pr "@.sql> %s@." stmt;
      try
        Fmt.pr "%a@." Shell.pp_result (Shell.exec shell stmt);
        Fmt.pr "  (again, warm)@.";
        Fmt.pr "%a@." Shell.pp_result (Shell.exec shell stmt)
      with
      | Minirel_sql.Lexer.Error e
      | Minirel_sql.Parser.Error e
      | Minirel_sql.Binder.Error e
      | Shell.Error e ->
          Fmt.epr "  error: %s@." e
      | Invalid_argument e -> Fmt.epr "  error: %s@." e)
    statements

(* Interactive loop: full SQL statements (SELECT with GROUP BY / ORDER
   BY / LIMIT, CREATE TABLE/INDEX, INSERT, DELETE) from stdin via the
   shell, one PMV per template, with dot-commands for introspection. *)
let repl scale seed fresh persist shards domains probe_path =
  if shards > 1 && persist <> None then begin
    Fmt.epr "--persist is not supported with --shards@.";
    exit 2
  end;
  with_pool ~domains @@ fun par ->
  let of_router router =
    Router.set_parallel router par;
    Shell.of_router router
  in
  (* with --persist BASE, the catalog survives across sessions as
     BASE.snapshot + BASE.wal: load both on entry, append the wal while
     running, and fold the wal into a fresh snapshot on exit *)
  let shell =
    match persist with
    | Some base when Sys.file_exists (base ^ ".snapshot") ->
        let pool = Buffer_pool.create ~capacity:8_000 () in
        let catalog = Minirel_index.Snapshot.load ~pool ~filename:(base ^ ".snapshot") in
        let replayed =
          if Sys.file_exists (base ^ ".wal") then
            Minirel_txn.Wal.replay catalog ~filename:(base ^ ".wal")
          else 0
        in
        Fmt.pr "restored %s.snapshot (+%d logged changes)@." base replayed;
        Shell.create catalog
    | Some _ | None ->
        if fresh || persist <> None then
          if shards > 1 then
            (* empty sharded database: tables created in the repl
               replicate (declare partitioned relations through the
               library API) *)
            of_router (Router.create ~shards ())
          else Shell.create (Catalog.create (Buffer_pool.create ~capacity:4_000 ()))
        else begin
          let catalog, _params, _t1 = build ~scale ~seed in
          if shards > 1 then of_router (shard_tpcr ~shards catalog)
          else Shell.create catalog
        end
  in
  if shards <= 1 then Engine.set_parallel (Shell.engine shell) par;
  Shell.set_probe_path shell probe_path;
  let finish =
    match persist with
    | None -> fun () -> ()
    | Some base ->
        let wal = Minirel_txn.Wal.open_log ~filename:(base ^ ".wal") () in
        Minirel_txn.Wal.attach wal (Shell.txn_mgr shell);
        fun () ->
          Minirel_txn.Wal.close wal;
          Minirel_index.Snapshot.save (Shell.catalog shell) ~filename:(base ^ ".snapshot");
          (try Sys.remove (base ^ ".wal") with Sys_error _ -> ());
          Fmt.pr "saved %s.snapshot@." base
  in
  Fmt.pr
    "SQL statements (joins unparenthesised, parameterised selections in parens),@.also: \
     create table/index, insert into ... values, update ... set, delete from, select \
     distinct, group by, order by, limit, explain, trace, metrics [reset].@.dot-commands: \
     .views — PMV report   .templates — parsed templates   .metrics — telemetry   .quit@.";
  let rec loop () =
    Fmt.pr "pmv> %!";
    match input_line stdin with
    | exception End_of_file -> finish ()
    | ".quit" | ".exit" -> finish ()
    | ".views" ->
        Fmt.pr "%a@." Pmv.Manager.pp_report (Shell.manager shell);
        loop ()
    | ".templates" ->
        Fmt.pr "%d templates parsed this session@."
          (Minirel_sql.Session.n_templates (Shell.session shell));
        loop ()
    | ".metrics" ->
        Fmt.pr "%a@." Shell.pp_result (Shell.exec shell "metrics");
        loop ()
    | "" -> loop ()
    | line ->
        (try Fmt.pr "%a@." Shell.pp_result (Shell.exec shell line) with
        | Minirel_sql.Lexer.Error e
        | Minirel_sql.Parser.Error e
        | Minirel_sql.Binder.Error e
        | Shell.Error e ->
            Fmt.pr "error: %s@." e
        | Invalid_argument e | Failure e -> Fmt.pr "error: %s@." e
        | Not_found -> Fmt.pr "error: unknown relation@.");
        loop ()
  in
  loop ()

(* Replay one deterministic torture campaign (fault injection + oracle
   checking); the same seed always reproduces the same event digest. *)
let torture scale seed events check_every shards domains probe_path adaptive verbose =
  let module Torture = Minirel_check.Torture in
  let cfg =
    {
      (Torture.default_cfg ~seed) with
      Torture.events;
      scale;
      check_every;
      shards;
      domains;
      probe_path;
      adaptive;
      log = (if verbose then Some (Fmt.pr "  %s@.") else None);
    }
  in
  Fmt.pr "torture: seed %d, %d events, scale %g%s%s%s%s%s@." seed events scale
    (if shards > 1 then Fmt.str ", %d shards" shards else "")
    (if shards > 1 && domains > 1 then Fmt.str ", %d domains" domains else "")
    (if probe_path = Pmv.Answer.Epoch then ", epoch probes" else "")
    (if adaptive then ", adaptive maintenance" else "")
    (if verbose then "" else " (use --verbose for the event trace)");
  let o = if shards > 1 then Torture.run_sharded cfg else Torture.run cfg in
  Fmt.pr "%a@." Torture.pp_outcome o;
  if not (Torture.ok o) then begin
    Fmt.epr
      "reproduce with: pmvctl torture --seed %d --events %d --scale %g --shards %d \
       --domains %d%s --verbose@."
      seed events scale shards domains
      (if adaptive then " --adaptive" else "");
    exit 1
  end

open Cmdliner

let scale_arg = Arg.(value & opt float 0.01 & info [ "scale" ] ~docv:"S" ~doc:"TPC-R scale.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let shards_arg =
  Arg.(
    value
    & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:"Hash-partition the database across N engine shards (1 = single engine).")

let domains_arg =
  Arg.(
    value
    & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Run with a pool of N worker domains: sharded queries fan out in parallel and \
           O3 scans/joins run morsel-parallel (1 = sequential).")

(* --probe-path=locked|epoch, parsed through Answer.probe_path_of_string
   so the CLI and the library agree on the spelling. *)
let probe_path_arg =
  let path = Arg.enum [ ("locked", Pmv.Answer.Locked); ("epoch", Pmv.Answer.Epoch) ] in
  Arg.(
    value
    & opt path Pmv.Answer.Locked
    & info [ "probe-path" ] ~docv:"PATH"
        ~doc:
          "Query read path: $(b,locked) answers under the Section 3.6 S/X protocol, \
           $(b,epoch) takes no lock and serves complete cached answers through the \
           epoch-versioned probe fast path.")

let demo_cmd =
  let queries = Arg.(value & opt int 500 & info [ "queries" ] ~docv:"N") in
  let policy = Arg.(value & opt string "clock" & info [ "policy" ] ~docv:"P") in
  let f_max = Arg.(value & opt int 3 & info [ "f" ] ~docv:"F") in
  let capacity = Arg.(value & opt int 2_000 & info [ "capacity" ] ~docv:"L") in
  Cmd.v
    (Cmd.info "demo" ~doc:"Stream a Zipfian T1 workload through a PMV")
    Term.(const demo $ scale_arg $ seed_arg $ queries $ policy $ f_max $ capacity)

let query_cmd =
  let dates = Arg.(value & opt string "1,2" & info [ "dates" ] ~docv:"D1,D2,...") in
  let suppliers = Arg.(value & opt string "1" & info [ "suppliers" ] ~docv:"S1,S2,...") in
  Cmd.v
    (Cmd.info "query" ~doc:"Answer one T1 query twice, cold then hot")
    Term.(const query $ scale_arg $ seed_arg $ dates $ suppliers)

let simulate_cmd =
  let alpha = Arg.(value & opt float 1.07 & info [ "alpha" ] ~docv:"A") in
  let h = Arg.(value & opt int 2 & info [ "h" ] ~docv:"H") in
  let n = Arg.(value & opt int 2_000 & info [ "n" ] ~docv:"N") in
  let policy = Arg.(value & opt string "clock" & info [ "policy" ] ~docv:"P") in
  Cmd.v
    (Cmd.info "simulate" ~doc:"One hit-probability simulation cell (Section 4.1)")
    Term.(const simulate $ alpha $ h $ n $ policy)

let sql_cmd =
  let statements =
    Arg.(value & pos_all string [] & info [] ~docv:"SQL" ~doc:"SQL statements to run.")
  in
  Cmd.v
    (Cmd.info "sql"
       ~doc:
         "Run SQL statements over TPC-R data, one PMV per template (e.g. \"select \
          o.orderkey, l.quantity from orders o, lineitem l where o.orderkey = l.orderkey \
          and (o.orderdate = 3) and (l.suppkey = 2)\")")
    Term.(
      const sql $ scale_arg $ seed_arg $ shards_arg $ domains_arg $ probe_path_arg
      $ statements)

let trace_sample_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "trace-sample" ] ~docv:"N"
        ~doc:
          "Trace 1 in N queries (stratified: exactly one per window of N, which query \
           being a pure function of the seed). 1 traces every query. Also settable via \
           \\$(b,PMV_TRACE_SAMPLE).")

let trace_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "trace-seed" ] ~docv:"S"
        ~doc:
          "Seed of the sampling stream: the same seed reproduces the same sampled span \
           set. Also settable via \\$(b,PMV_TRACE_SEED).")

let trace_cmd =
  let queries = Arg.(value & opt int 10 & info [ "queries" ] ~docv:"N") in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Answer a short T1 workload and print the last query's stitched span tree — one \
          tree per query even across the sharded parallel fan-out, with per-shard \
          subtrees annotated shard/domain/worker and probe-path attribution")
    Term.(
      const trace $ scale_arg $ seed_arg $ queries $ shards_arg $ domains_arg
      $ probe_path_arg $ trace_sample_arg $ trace_seed_arg)

let flight_cmd =
  let queries = Arg.(value & opt int 50 & info [ "queries" ] ~docv:"N") in
  let fault =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault" ] ~docv:"SITE"
          ~doc:
            "Arm the failpoint SITE (e.g. $(b,maintain.apply), $(b,lockmgr.acquire)) to \
             fire once, so the hit and its fallout land in the recorder.")
  in
  Cmd.v
    (Cmd.info "flight"
       ~doc:
         "Drive a query+DML workload (optionally with a forced fault) and dump the \
          flight recorder: a merged, time-ordered low-level event log with a \
          reproducible digest")
    Term.(
      const flight $ scale_arg $ seed_arg $ queries $ shards_arg $ domains_arg
      $ probe_path_arg $ fault)

let metrics_cmd =
  let queries = Arg.(value & opt int 200 & info [ "queries" ] ~docv:"N") in
  let format =
    Arg.(
      value
      & opt string "text"
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text, prom, or json.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Run a short T1 workload and dump the telemetry snapshot")
    Term.(
      const metrics $ scale_arg $ seed_arg $ queries $ format $ shards_arg
      $ domains_arg $ probe_path_arg)

let repl_cmd =
  let fresh =
    Arg.(value & flag & info [ "fresh" ] ~doc:"Start with an empty catalog (use CREATE TABLE).")
  in
  let persist =
    Arg.(
      value
      & opt (some string) None
      & info [ "persist" ] ~docv:"BASE"
          ~doc:"Persist the catalog across sessions as BASE.snapshot + BASE.wal.")
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive SQL over TPC-R data with per-template PMVs")
    Term.(
      const repl $ scale_arg $ seed_arg $ fresh $ persist $ shards_arg $ domains_arg
      $ probe_path_arg)

let torture_cmd =
  let events = Arg.(value & opt int 400 & info [ "events" ] ~docv:"N" ~doc:"Workload events.") in
  let check_every =
    Arg.(value & opt int 40 & info [ "check-every" ] ~docv:"K" ~doc:"Deep-check cadence.")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print the event trace.") in
  let adaptive =
    Arg.(
      value
      & flag
      & info [ "adaptive" ]
          ~doc:
            "Enable heavy-light adaptive maintenance on every view: deltas touching \
             only light update keys lapse entries (recomputed on next probe) instead \
             of eager victim removal; the oracle checks stay exact either way.")
  in
  let scale =
    Arg.(value & opt float 0.002 & info [ "scale" ] ~docv:"S" ~doc:"TPC-R scale.")
  in
  Cmd.v
    (Cmd.info "torture"
       ~doc:
         "Replay a seeded fault-injection campaign (WAL crashes + recovery, lock \
          conflicts, I/O errors, deferred/lost maintenance) with every query \
          oracle-checked; exits non-zero on any consistency violation")
    Term.(
      const torture $ scale $ seed_arg $ events $ check_every $ shards_arg $ domains_arg
      $ probe_path_arg $ adaptive $ verbose)

let () =
  let doc = "partial materialized views demonstration tool" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "pmvctl" ~doc)
          [
            demo_cmd;
            query_cmd;
            simulate_cmd;
            sql_cmd;
            metrics_cmd;
            trace_cmd;
            flight_cmd;
            repl_cmd;
            torture_cmd;
          ]))
