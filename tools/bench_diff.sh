#!/bin/sh
# Diff fresh bench JSON against the committed (HEAD) baselines so a
# probe-bound serving regression cannot land silently.
#
# Usage: tools/bench_diff.sh [fresh_shard.json [fresh_parallel.json [fresh_observability.json [fresh_shapes.json [fresh_adaptive.json]]]]]
#   MAX_BENCH_REGRESSION_PCT=N   allowed regression (default 20)
#
# The default margin is set above the measured run-to-run noise floor
# of the reference 1-core host (individual shard q/s and ratios swing
# +/-15% between clean runs there); the tripwire targets the failure
# modes that matter — a tentpole ratio collapsing toward 1.0 or a
# serving rate falling off a cliff — not noise re-rolls.
#
# Comparison rules (core-aware):
#   - the gated shard ratios (router4_vs_engine, router1_vs_engine)
#     divide two same-host measurements, so they compare on any host;
#   - absolute probe-bound q/s per configuration only compares when the
#     fresh host reports the same host_cores as the committed run;
#   - parallel speedups only compare when both runs mark
#     speedup_applicable (a 1-core host cannot reproduce them);
#   - the parallel 1-domain overhead ratios (scheduler cost) compare on
#     matching core counts even where the speedups do not.
# Exits 0 with a note when there is no git HEAD or no committed
# baseline to diff against.
set -eu
cd "$(dirname "$0")/.."

max="${MAX_BENCH_REGRESSION_PCT:-20}"
fresh_shard="${1:-BENCH_shard.json}"
fresh_parallel="${2:-BENCH_parallel.json}"
fresh_observability="${3:-BENCH_observability.json}"
fresh_shapes="${4:-BENCH_shapes.json}"
fresh_adaptive="${5:-BENCH_adaptive.json}"
status=0

if ! git rev-parse --quiet --verify HEAD >/dev/null 2>&1; then
  echo "bench_diff: no git HEAD - nothing to diff against"
  exit 0
fi

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# First occurrence of a scalar "key": value in a JSON file.
jget() { # file key
  awk -F': ' -v k="\"$2\"" '
    index($0, k ": ") { v = $2; gsub(/[ ,}]/, "", v); print v; exit }' "$1"
}

# "label qps" pairs of the probe_bound block's epoch runs: the first
# "runs" array after the "probe_bound" opener (the nested "locked"
# block repeats the key and is skipped).
probe_qps() { # file
  awk '
    /"probe_bound"/ { pb = 1 }
    pb && /"runs"/ && !done {
      done = 1
      n = split($0, parts, /\{"label": "/)
      for (i = 2; i <= n; i++) {
        p = parts[i]
        lbl = substr(p, 1, index(p, "\"") - 1)
        if (match(p, /"queries_per_sec": [0-9.]+/)) {
          q = substr(p, RSTART, RLENGTH)
          sub(/^"queries_per_sec": /, "", q)
          print lbl, q
        }
      }
    }' "$1"
}

# A value must stay within max% of its committed baseline (larger is
# always fine).
within() { # old new
  awk -v o="$1" -v n="$2" -v max="$max" 'BEGIN { exit !(n >= o * (1 - max / 100)) }'
}

# ---- shard: probe-bound serving --------------------------------------
if git cat-file -e HEAD:BENCH_shard.json 2>/dev/null && [ -f "$fresh_shard" ]; then
  base="$tmpdir/shard_base.json"
  git show HEAD:BENCH_shard.json >"$base"

  if ! grep -q '"router4_vs_engine"' "$base"; then
    # a baseline from before the probe-bound layout (different bench
    # methodology) is not comparable at all
    echo "bench_diff: committed shard baseline predates the probe-bound layout - skipped"
  else
    for key in router4_vs_engine router1_vs_engine; do
      old=$(jget "$base" "$key")
      new=$(jget "$fresh_shard" "$key")
      if [ -n "$old" ] && [ -n "$new" ]; then
        if within "$old" "$new"; then
          echo "bench_diff: $key ${old} -> ${new} (ok)"
        else
          echo "bench_diff FAIL: $key regressed ${old} -> ${new} (> ${max}%)" >&2
          status=1
        fi
      fi
    done

    old_cores=$(jget "$base" host_cores)
    new_cores=$(jget "$fresh_shard" host_cores)
    if [ -n "$old_cores" ] && [ "$old_cores" = "$new_cores" ]; then
      probe_qps "$base" >"$tmpdir/old_qps"
      probe_qps "$fresh_shard" >"$tmpdir/new_qps"
      while read -r lbl old; do
        new=$(awk -v l="$lbl" '$1 == l { print $2; exit }' "$tmpdir/new_qps")
        [ -n "$new" ] || continue
        if within "$old" "$new"; then
          echo "bench_diff: probe-bound $lbl ${old} -> ${new} q/s (ok)"
        else
          echo "bench_diff FAIL: probe-bound $lbl q/s regressed ${old} -> ${new} (> ${max}%)" >&2
          status=1
        fi
      done <"$tmpdir/old_qps"
    else
      echo "bench_diff: host_cores differ (${old_cores:-?} vs ${new_cores:-?}) - absolute q/s not compared"
    fi
  fi
else
  echo "bench_diff: no committed BENCH_shard.json baseline - skipped"
fi

# ---- parallel: Domain-pool speedups ----------------------------------
if git cat-file -e HEAD:BENCH_parallel.json 2>/dev/null && [ -f "$fresh_parallel" ]; then
  base="$tmpdir/parallel_base.json"
  git show HEAD:BENCH_parallel.json >"$base"
  old_app=$(jget "$base" speedup_applicable)
  new_app=$(jget "$fresh_parallel" speedup_applicable)
  old_cores=$(jget "$base" host_cores)
  new_cores=$(jget "$fresh_parallel" host_cores)
  if [ "$old_app" = "true" ] && [ "$new_app" = "true" ] && [ "$old_cores" = "$new_cores" ]; then
    old=$(jget "$base" speedup_max_domains)
    new=$(jget "$fresh_parallel" speedup_max_domains)
    if [ -n "$old" ] && [ -n "$new" ]; then
      if within "$old" "$new"; then
        echo "bench_diff: fan-out speedup ${old} -> ${new} (ok)"
      else
        echo "bench_diff FAIL: fan-out speedup regressed ${old} -> ${new} (> ${max}%)" >&2
        status=1
      fi
    fi
  else
    echo "bench_diff: parallel speedups not applicable/comparable on this host - skipped"
  fi

  # the pooled runs must carry the work-stealing scheduler's counter
  # snapshot (submitted/local_hits/injector_hits/steals/parks/task_exns)
  if ! grep -q '"sched":' "$fresh_parallel"; then
    echo "bench_diff FAIL: fresh BENCH_parallel.json carries no scheduler counter snapshot" >&2
    status=1
  fi

  # 1-domain overhead divides two same-host measurements of the same
  # sweep, so it compares whenever the core counts match even where the
  # speedups do not apply (fan-out is the first occurrence of the key,
  # morsel the second); a drop past the margin means the scheduler got
  # more expensive per dispatched task
  if grep -q '"overhead_1_domain"' "$base" && [ -n "$old_cores" ] && [ "$old_cores" = "$new_cores" ]; then
    for idx in 1 2; do
      if [ "$idx" = "1" ]; then sweep=fan-out; else sweep=morsel; fi
      old=$(awk -F': ' -v want="$idx" '/"overhead_1_domain"/ { if (++n == want) { gsub(/[ ,]/, "", $2); print $2; exit } }' "$base")
      new=$(awk -F': ' -v want="$idx" '/"overhead_1_domain"/ { if (++n == want) { gsub(/[ ,]/, "", $2); print $2; exit } }' "$fresh_parallel")
      [ -n "$old" ] && [ -n "$new" ] || continue
      if within "$old" "$new"; then
        echo "bench_diff: parallel $sweep overhead_1_domain ${old} -> ${new} (ok)"
      else
        echo "bench_diff FAIL: parallel $sweep overhead_1_domain regressed ${old} -> ${new} (> ${max}%)" >&2
        status=1
      fi
    done
  fi
else
  echo "bench_diff: no committed BENCH_parallel.json baseline - skipped"
fi

# ---- observability: tracing + flight recorder overhead ---------------
if git cat-file -e HEAD:BENCH_observability.json 2>/dev/null && [ -f "$fresh_observability" ]; then
  base="$tmpdir/observability_base.json"
  git show HEAD:BENCH_observability.json >"$base"

  # the overhead percentage is a same-host ratio of ratios, so it
  # compares on any host — but it sits near zero, where relative
  # comparison is meaningless; gate it in absolute percentage points
  # instead (fresh may exceed committed by at most 3pp, and never the
  # 5% CI gate)
  old=$(jget "$base" regression_pct)
  new=$(jget "$fresh_observability" regression_pct)
  if [ -n "$old" ] && [ -n "$new" ]; then
    if awk -v o="$old" -v n="$new" 'BEGIN { exit !(n < 5 && n <= o + 3) }'; then
      echo "bench_diff: observability regression_pct ${old} -> ${new} (ok)"
    else
      echo "bench_diff FAIL: observability overhead grew ${old}% -> ${new}% (> +3pp or >= 5%)" >&2
      status=1
    fi
  fi

  # absolute full-stack serving rate ("on" mode) only compares on the
  # same core count
  old_cores=$(jget "$base" host_cores)
  new_cores=$(jget "$fresh_observability" host_cores)
  if [ -n "$old_cores" ] && [ "$old_cores" = "$new_cores" ]; then
    # second "queries_per_sec" occurrence is the "on" mode (off comes
    # first); the mode objects are inline, so extract by match, not by
    # field position
    on_qps() {
      awk '{
        while (match($0, /"queries_per_sec": [0-9.]+/)) {
          v = substr($0, RSTART, RLENGTH)
          sub(/^"queries_per_sec": /, "", v)
          if (++n == 2) { print v; exit }
          $0 = substr($0, RSTART + RLENGTH)
        }
      }' "$1"
    }
    old=$(on_qps "$base")
    new=$(on_qps "$fresh_observability")
    if [ -n "$old" ] && [ -n "$new" ]; then
      if within "$old" "$new"; then
        echo "bench_diff: observability-on ${old} -> ${new} q/s (ok)"
      else
        echo "bench_diff FAIL: observability-on q/s regressed ${old} -> ${new} (> ${max}%)" >&2
        status=1
      fi
    fi
  else
    echo "bench_diff: host_cores differ (${old_cores:-?} vs ${new_cores:-?}) - observability q/s not compared"
  fi
else
  echo "bench_diff: no committed BENCH_observability.json baseline - skipped"
fi

# ---- shapes: grouped-probe serving across shard counts ----------------
if git cat-file -e HEAD:BENCH_shapes.json 2>/dev/null && [ -f "$fresh_shapes" ]; then
  base="$tmpdir/shapes_base.json"
  git show HEAD:BENCH_shapes.json >"$base"

  # answers must match the brute-force oracle on any host (anchored:
  # the per-run entries repeat the key inline earlier in the file)
  oracle=$(awk -F': ' '/^ *"oracle_clean"/ { gsub(/[ ,}]/, "", $2); print $2; exit }' "$fresh_shapes")
  if [ "$oracle" != "true" ]; then
    echo "bench_diff FAIL: fresh shapes bench is not oracle-clean" >&2
    status=1
  fi

  # the 4-vs-1-shard ratio divides two same-host measurements, so it
  # compares on any host
  old=$(jget "$base" speedup_4_vs_1)
  new=$(jget "$fresh_shapes" speedup_4_vs_1)
  if [ -n "$old" ] && [ -n "$new" ]; then
    if within "$old" "$new"; then
      echo "bench_diff: shapes speedup_4_vs_1 ${old} -> ${new} (ok)"
    else
      echo "bench_diff FAIL: shapes speedup_4_vs_1 regressed ${old} -> ${new} (> ${max}%)" >&2
      status=1
    fi
  fi

  # absolute grouped-probe q/s only compares on the same core count
  old_cores=$(jget "$base" host_cores)
  new_cores=$(jget "$fresh_shapes" host_cores)
  if [ -n "$old_cores" ] && [ "$old_cores" = "$new_cores" ]; then
    for key in qps_1_shard qps_4_shard; do
      old=$(jget "$base" "$key")
      new=$(jget "$fresh_shapes" "$key")
      if [ -n "$old" ] && [ -n "$new" ]; then
        if within "$old" "$new"; then
          echo "bench_diff: shapes $key ${old} -> ${new} q/s (ok)"
        else
          echo "bench_diff FAIL: shapes $key regressed ${old} -> ${new} (> ${max}%)" >&2
          status=1
        fi
      fi
    done
  else
    echo "bench_diff: host_cores differ (${old_cores:-?} vs ${new_cores:-?}) - shapes q/s not compared"
  fi
else
  echo "bench_diff: no committed BENCH_shapes.json baseline - skipped"
fi

# ---- adaptive: heavy-light maintenance + budget arbitration ----------
if git cat-file -e HEAD:BENCH_adaptive.json 2>/dev/null && [ -f "$fresh_adaptive" ]; then
  base="$tmpdir/adaptive_base.json"
  git show HEAD:BENCH_adaptive.json >"$base"

  # the post-churn oracle must be clean on any host
  oracle=$(jget "$fresh_adaptive" oracle_clean)
  if [ "$oracle" != "true" ]; then
    echo "bench_diff FAIL: fresh adaptive bench is not oracle-clean after the churn" >&2
    status=1
  fi

  # the maintenance speedup divides two same-host hook timings, so it
  # compares on any host
  old=$(jget "$base" speedup_adaptive_vs_dj)
  new=$(jget "$fresh_adaptive" speedup_adaptive_vs_dj)
  if [ -n "$old" ] && [ -n "$new" ]; then
    if within "$old" "$new"; then
      echo "bench_diff: adaptive speedup_adaptive_vs_dj ${old} -> ${new} (ok)"
    else
      echo "bench_diff FAIL: adaptive maintenance speedup regressed ${old} -> ${new} (> ${max}%)" >&2
      status=1
    fi
  fi

  # the arbitration gain sits near zero, where relative comparison is
  # meaningless; gate it in absolute hit-ratio points (the fresh gain
  # may trail the committed one by at most 0.03, and never go negative)
  old=$(jget "$base" hit_ratio_gain)
  new=$(jget "$fresh_adaptive" hit_ratio_gain)
  if [ -n "$old" ] && [ -n "$new" ]; then
    if awk -v o="$old" -v n="$new" 'BEGIN { exit !(n >= 0 && n >= o - 0.03) }'; then
      echo "bench_diff: adaptive hit_ratio_gain ${old} -> ${new} (ok)"
    else
      echo "bench_diff FAIL: budget arbitration gain fell ${old} -> ${new} (negative or > 0.03 below baseline)" >&2
      status=1
    fi
  fi

  # absolute maintenance throughput only compares on the same core count
  old_cores=$(jget "$base" host_cores)
  new_cores=$(jget "$fresh_adaptive" host_cores)
  if [ -n "$old_cores" ] && [ "$old_cores" = "$new_cores" ]; then
    for key in maint_qps_adaptive maint_qps_dj; do
      old=$(jget "$base" "$key")
      new=$(jget "$fresh_adaptive" "$key")
      if [ -n "$old" ] && [ -n "$new" ]; then
        if within "$old" "$new"; then
          echo "bench_diff: adaptive $key ${old} -> ${new} changes/s (ok)"
        else
          echo "bench_diff FAIL: adaptive $key regressed ${old} -> ${new} (> ${max}%)" >&2
          status=1
        fi
      fi
    done
  else
    echo "bench_diff: host_cores differ (${old_cores:-?} vs ${new_cores:-?}) - adaptive maint q/s not compared"
  fi
else
  echo "bench_diff: no committed BENCH_adaptive.json baseline - skipped"
fi

exit $status
