#!/bin/sh
# Repo health gate: build, tier-1 tests, torture smokes (single-engine,
# sharded, parallel sharded with digest reproducibility, and the epoch
# probe path), a flight-recorder smoke, telemetry and observability
# overhead, shard scaling, probe-bound serving, work-stealing Domain-pool
# parallelism (core-aware: speedups where the cores exist, scheduler
# overhead vs the committed baseline on 1-core hosts), heavy-light
# adaptive maintenance + budget arbitration, and a bench diff against
# committed baselines.
#
# Usage: tools/check.sh [--skip-bench]
#   SKIP_BENCH=1          same as --skip-bench
#   MAX_REGRESSION_PCT=N  override the telemetry/observability overhead
#                         gates (default 5)
#   BENCH_ARGS="..."      extra args for the benches (e.g. --full)
set -eu

cd "$(dirname "$0")/.."

skip_bench="${SKIP_BENCH:-0}"
[ "${1:-}" = "--skip-bench" ] && skip_bench=1
max_pct="${MAX_REGRESSION_PCT:-5}"

echo "== dune build"
dune build

echo "== dune runtest (tier 1)"
dune runtest

echo "== torture smoke (fixed seed, oracle must stay silent)"
torture_out=$(dune exec bin/pmvctl.exe -- torture --seed 42 --events 400) || {
  echo "$torture_out"
  echo "FAIL: torture campaign reported oracle violations" >&2
  exit 1
}
echo "$torture_out"
# the smoke must actually inject faults: WAL crashes, lock conflicts,
# I/O errors and forced deferrals all > 0
echo "$torture_out" | tr ' ' '\n' |
  awk -F= '/^(crashes|lock_rejects|io_faults|deferrals)=/ { n++; if ($2 + 0 == 0) bad = 1 }
           END { exit !(n == 4 && !bad) }' || {
  echo "FAIL: torture smoke injected too few fault classes" >&2
  exit 1
}

echo "== sharded torture smoke (4 hash-partitioned engines, merged oracle must stay silent)"
shard_out=$(dune exec bin/pmvctl.exe -- torture --seed 42 --events 200 --shards 4) || {
  echo "$shard_out"
  echo "FAIL: sharded torture campaign reported oracle violations" >&2
  exit 1
}
echo "$shard_out"
# shard-scoped faults must actually fire (no WAL crashes by design)
echo "$shard_out" | tr ' ' '\n' |
  awk -F= '/^(lock_rejects|io_faults|deferrals)=/ { n++; if ($2 + 0 == 0) bad = 1 }
           END { exit !(n == 3 && !bad) }' || {
  echo "FAIL: sharded torture smoke injected too few fault classes" >&2
  exit 1
}

echo "== work-stealing torture smoke (4 shards x 4 domains, digest reproducible under stealing)"
par_out=$(dune exec bin/pmvctl.exe -- torture --seed 42 --events 200 --shards 4 --domains 4) || {
  echo "$par_out"
  echo "FAIL: parallel sharded torture campaign reported oracle violations" >&2
  exit 1
}
echo "$par_out"
par_out2=$(dune exec bin/pmvctl.exe -- torture --seed 42 --events 200 --shards 4 --domains 4) || {
  echo "FAIL: parallel sharded torture rerun reported oracle violations" >&2
  exit 1
}
digest1=$(echo "$par_out" | tr ' ' '\n' | awk -F= '/^digest=/ { print $2; exit }')
digest2=$(echo "$par_out2" | tr ' ' '\n' | awk -F= '/^digest=/ { print $2; exit }')
if [ -z "$digest1" ] || [ "$digest1" != "$digest2" ]; then
  echo "FAIL: parallel torture digest not reproducible (${digest1:-none} vs ${digest2:-none})" >&2
  exit 1
fi
echo "digest reproducible across runs: $digest1"

echo "== epoch-path torture cross-check (same seed, lock-free probe reads)"
# same campaign as the sharded smoke but answering through the epoch
# fast path; the oracle must stay just as silent. Digests legitimately
# differ across probe paths (cache admission order changes), so only
# the verdict is gated.
epoch_out=$(dune exec bin/pmvctl.exe -- torture --seed 42 --events 200 --shards 4 --probe-path epoch) || {
  echo "$epoch_out"
  echo "FAIL: epoch-path torture campaign reported oracle violations" >&2
  exit 1
}
echo "$epoch_out"

echo "== adaptive-maintenance torture smoke (lapse protocol oracle-exact: single engine, sharded, epoch path)"
# heavy-light classification on: light-key deltas lapse entries instead
# of eager victim maintenance, and every oracle check must stay exact
for extra in "" "--shards 3" "--shards 3 --probe-path epoch"; do
  ad_out=$(dune exec bin/pmvctl.exe -- torture --seed 42 --events 200 --adaptive $extra) || {
    echo "$ad_out"
    echo "FAIL: adaptive torture campaign ($extra) reported oracle violations" >&2
    exit 1
  }
done
echo "$ad_out"

echo "== query-shape smoke (each Section 3.6 shape oracle-clean at 1 and 4 shards, both probe paths)"
# the shapes suite runs the per-shape differential properties —
# distinct / grouped / ordered first-k / exists against the
# brute-force oracle across 1-4 shards and locked+epoch reads — plus
# the pinned regression seed corpus
dune exec test/test_main.exe -- test shapes || {
  echo "FAIL: a Section 3.6 query shape diverged from the oracle" >&2
  exit 1
}

echo "== flight recorder smoke (forced fault -> non-empty, time-ordered, digest-stable dump)"
# a short faulted workload so the ring does not wrap past the early
# Fault_hit: the dump must capture the injected maintain.apply, be
# globally time-ordered, and digest identically on a same-seed rerun
# (the digest covers what happened, never when)
fl1=$(dune exec bin/pmvctl.exe -- flight --seed 42 --queries 20 --fault maintain.apply)
fl2=$(dune exec bin/pmvctl.exe -- flight --seed 42 --queries 20 --fault maintain.apply)
echo "$fl1" | grep "flight recorder:"
echo "$fl1" | grep -q "fault.hit" || {
  echo "FAIL: forced maintain.apply fault not captured in the flight dump" >&2
  exit 1
}
echo "$fl1" | awk '$1 ~ /^#/ { n++; if ($2 + 0 < prev) bad = 1; prev = $2 + 0 }
                   END { exit !(n > 0 && !bad) }' || {
  echo "FAIL: flight dump empty or not time-ordered" >&2
  exit 1
}
fd1=$(echo "$fl1" | sed -n 's/.*digest \([0-9a-f]*\).*/\1/p')
fd2=$(echo "$fl2" | sed -n 's/.*digest \([0-9a-f]*\).*/\1/p')
if [ -z "$fd1" ] || [ "$fd1" != "$fd2" ]; then
  echo "FAIL: flight digest not reproducible (${fd1:-none} vs ${fd2:-none})" >&2
  exit 1
fi
echo "flight digest reproducible across runs: $fd1"

if [ "$skip_bench" = "1" ]; then
  echo "== telemetry overhead and shard scaling gates skipped"
  exit 0
fi

echo "== telemetry overhead gate (< ${max_pct}%)"
# the bench's floor estimator absorbs bursty noise internally; the
# retries (with a cool-down, so one multi-minute contention window
# cannot eat them back-to-back) cover a fully contended run — a real
# regression fails every attempt
tm_ok=0
for attempt in 1 2 3; do
  if [ "$attempt" != "1" ]; then
    echo "telemetry gate missed; cooling down before retry $attempt (noisy host)"
    sleep 20
  fi
  dune exec bench/main.exe -- telemetry ${BENCH_ARGS:-}
  pct=$(awk -F': ' '/"regression_pct"/ { gsub(/[ ,]/, "", $2); print $2 }' BENCH_telemetry.json)
  if [ -z "$pct" ]; then
    echo "FAIL: no regression_pct in BENCH_telemetry.json" >&2
    exit 1
  fi
  echo "telemetry-on vs telemetry-off regression: ${pct}%"
  if awk -v pct="$pct" -v max="$max_pct" 'BEGIN { exit !(pct < max) }'; then
    tm_ok=1
    break
  fi
done
[ "$tm_ok" = "1" ] || {
  echo "FAIL: telemetry overhead ${pct}% >= ${max_pct}% (3 attempts)" >&2
  exit 1
}

echo "== observability overhead gate (< ${max_pct}%)"
# recorder + always-on tracing on the probe-bound epoch regime — the
# serving path where a fixed per-query cost is proportionally largest.
# Same spaced-retry policy as the telemetry gate above.
obs_ok=0
for attempt in 1 2 3; do
  if [ "$attempt" != "1" ]; then
    echo "observability gate missed; cooling down before retry $attempt (noisy host)"
    sleep 20
  fi
  dune exec bench/main.exe -- observability ${BENCH_ARGS:-}
  obs_pct=$(awk -F': ' '/"regression_pct"/ { gsub(/[ ,]/, "", $2); print $2 }' BENCH_observability.json)
  if [ -z "$obs_pct" ]; then
    echo "FAIL: no regression_pct in BENCH_observability.json" >&2
    exit 1
  fi
  echo "observability-on vs observability-off regression: ${obs_pct}%"
  if awk -v pct="$obs_pct" -v max="$max_pct" 'BEGIN { exit !(pct < max) }'; then
    obs_ok=1
    break
  fi
done
[ "$obs_ok" = "1" ] || {
  echo "FAIL: observability overhead ${obs_pct}% >= ${max_pct}% (3 attempts)" >&2
  exit 1
}

echo "== shard scaling + probe-bound gates (scan >= 1.5x at 4 shards; router cache residency beats the engine)"
# correctness (oracle, checksums) fails immediately; the throughput
# thresholds get the same spaced retries as the overhead gates — a
# real regression fails every attempt, a contended run does not
sh_ok=0
for attempt in 1 2 3; do
  if [ "$attempt" != "1" ]; then
    echo "shard throughput gates missed; cooling down before retry $attempt (noisy host)"
    sleep 20
  fi
  dune exec bench/main.exe -- shard ${BENCH_ARGS:-}

  # first occurrences of the shared key names are the scan-bound
  # regime; the probe_bound block uses its own distinct keys
  # (router4_vs_engine, router1_vs_engine)
  speedup=$(awk -F': ' '/"speedup_4_shards"/ { gsub(/[ ,]/, "", $2); print $2; exit }' BENCH_shard.json)
  one_shard=$(awk -F': ' '/"one_shard_router_vs_engine"/ { gsub(/[ ,]/, "", $2); print $2; exit }' BENCH_shard.json)
  oracle=$(awk -F': ' '/^ *"oracle_clean"/ { gsub(/[ ,}]/, "", $2); print $2; exit }' BENCH_shard.json)
  p_router4=$(awk -F': ' '/"router4_vs_engine"/ { gsub(/[ ,]/, "", $2); print $2; exit }' BENCH_shard.json)
  p_router1=$(awk -F': ' '/"router1_vs_engine"/ { gsub(/[ ,]/, "", $2); print $2; exit }' BENCH_shard.json)
  p_checksums=$(awk -F': ' '/"checksums_identical"/ { gsub(/[ ,}]/, "", $2); print $2; exit }' BENCH_shard.json)
  if [ -z "$speedup" ] || [ -z "$one_shard" ] || [ -z "$oracle" ] ||
     [ -z "$p_router4" ] || [ -z "$p_router1" ] || [ -z "$p_checksums" ]; then
    echo "FAIL: missing fields in BENCH_shard.json" >&2
    exit 1
  fi
  echo "4-shard speedup: ${speedup}x, 1-shard router vs engine: ${one_shard}x, oracle: ${oracle}"
  echo "probe-bound router4 vs engine: ${p_router4}x, router1 vs engine: ${p_router1}x, checksums identical: ${p_checksums}"
  [ "$oracle" = "true" ] || {
    echo "FAIL: shard bench merged answers violated the oracle" >&2
    exit 1
  }
  [ "$p_checksums" = "true" ] || {
    echo "FAIL: probe-bound answers differ across probe paths or shard counts" >&2
    exit 1
  }
  if awk -v s="$speedup" 'BEGIN { exit !(s >= 1.5) }' &&
     awk -v r="$one_shard" 'BEGIN { exit !(r >= 0.85) }' &&
     awk -v r="$p_router4" 'BEGIN { exit !(r >= 1.0) }' &&
     awk -v r="$p_router1" 'BEGIN { exit !(r >= 0.95) }'; then
    sh_ok=1
    break
  fi
done
[ "$sh_ok" = "1" ] || {
  echo "FAIL: shard gates missed on every attempt (need scan 4-shard >= 1.5x [${speedup}x], 1-shard >= 0.85x [${one_shard}x], probe-bound router4 >= 1.0x [${p_router4}x], router1 >= 0.95x [${p_router1}x])" >&2
  exit 1
}

echo "== grouped-probe shapes gate (4-shard grouped qps holds the 1-shard line, oracle clean)"
# per-query fast-path work is proportional to the result size, not the
# shard count, so fanning the data out must not tax grouped serving;
# same spaced-retry policy as the other throughput gates
shp_ok=0
for attempt in 1 2 3; do
  if [ "$attempt" != "1" ]; then
    echo "shapes gate missed; cooling down before retry $attempt (noisy host)"
    sleep 20
  fi
  dune exec bench/main.exe -- shapes ${BENCH_ARGS:-}
  shp_qps1=$(awk -F': ' '/"qps_1_shard"/ { gsub(/[ ,]/, "", $2); print $2; exit }' BENCH_shapes.json)
  shp_qps4=$(awk -F': ' '/"qps_4_shard"/ { gsub(/[ ,]/, "", $2); print $2; exit }' BENCH_shapes.json)
  shp_oracle=$(awk -F': ' '/^ *"oracle_clean"/ { gsub(/[ ,}]/, "", $2); print $2; exit }' BENCH_shapes.json)
  if [ -z "$shp_qps1" ] || [ -z "$shp_qps4" ] || [ -z "$shp_oracle" ]; then
    echo "FAIL: missing fields in BENCH_shapes.json" >&2
    exit 1
  fi
  echo "grouped-probe qps: 1 shard ${shp_qps1}, 4 shards ${shp_qps4}, oracle: ${shp_oracle}"
  [ "$shp_oracle" = "true" ] || {
    echo "FAIL: shapes bench answers violated the oracle" >&2
    exit 1
  }
  if awk -v a="$shp_qps4" -v b="$shp_qps1" 'BEGIN { exit !(a >= b) }'; then
    shp_ok=1
    break
  fi
done
[ "$shp_ok" = "1" ] || {
  echo "FAIL: 4-shard grouped-probe qps ${shp_qps4} below 1-shard ${shp_qps1} on every attempt" >&2
  exit 1
}

echo "== parallel gate (work-stealing scheduler: checksums + oracle always; core-aware speedup/overhead gates)"
dune exec bench/main.exe -- parallel ${BENCH_ARGS:-}

applicable=$(awk -F': ' '/"speedup_applicable"/ { gsub(/[ ,]/, "", $2); print $2; exit }' BENCH_parallel.json)
checksums=$(awk -F': ' '/"checksums_identical"/ { gsub(/[ ,]/, "", $2); print $2; exit }' BENCH_parallel.json)
par_oracle=$(awk -F': ' '/^ *"oracle_clean"/ { gsub(/[ ,}]/, "", $2); print $2; exit }' BENCH_parallel.json)
par_cores=$(awk -F': ' '/"host_cores"/ { gsub(/[ ,]/, "", $2); print $2; exit }' BENCH_parallel.json)
# first occurrences are the fan-out sweep; the morsel and shaped blocks
# repeat the keys in that order
fan_speedup=$(awk -F': ' '/"speedup_max_domains"/ { gsub(/[ ,]/, "", $2); print $2; exit }' BENCH_parallel.json)
fan_overhead=$(awk -F': ' '/"overhead_1_domain"/ { gsub(/[ ,]/, "", $2); print $2; exit }' BENCH_parallel.json)
morsel_overhead=$(awk -F': ' '/"overhead_1_domain"/ { if (++n == 2) { gsub(/[ ,]/, "", $2); print $2; exit } }' BENCH_parallel.json)
if [ -z "$applicable" ] || [ -z "$checksums" ] || [ -z "$par_oracle" ] || [ -z "$fan_speedup" ] || [ -z "$fan_overhead" ]; then
  echo "FAIL: missing fields in BENCH_parallel.json" >&2
  exit 1
fi
[ "$par_oracle" = "true" ] || {
  echo "FAIL: parallel bench answers violated the oracle" >&2
  exit 1
}
[ "$checksums" = "true" ] || {
  echo "FAIL: parallel result streams not checksum-identical to sequential" >&2
  exit 1
}
# every pooled run must snapshot the scheduler counters
grep -q '"sched":' BENCH_parallel.json || {
  echo "FAIL: no work-stealing scheduler counter snapshot in BENCH_parallel.json" >&2
  exit 1
}
if [ "$applicable" = "true" ]; then
  echo "fan-out speedup: ${fan_speedup}x, 1-domain overhead ratio: ${fan_overhead}x"
  awk -v s="$fan_speedup" 'BEGIN { exit !(s >= 1.8) }' || {
    echo "FAIL: fan-out speedup ${fan_speedup}x < 1.8x at max domains" >&2
    exit 1
  }
  awk -v r="$fan_overhead" 'BEGIN { exit !(r >= 0.95) }' || {
    echo "FAIL: 1-domain pool regressed to ${fan_overhead}x of no-pool sequential" >&2
    exit 1
  }
else
  # an idle extra domain still pays stop-the-world GC sync, so on a
  # host without enough cores the speedups do not measure our
  # machinery. What a 1-core host CAN measure is scheduler overhead:
  # the 1-domain-pool-vs-no-pool ratio must stay within 5% of the
  # committed baseline's (same-core hosts only) so the work-stealing
  # dispatch cannot silently cost more than the pool it replaced.
  echo "host lacks the cores for the largest pool: speedup gate replaced by the 1-domain overhead diff"
  echo "(recorded: fan-out ${fan_speedup}x speedup, 1-domain overhead fan-out ${fan_overhead}x morsel ${morsel_overhead:-?}x)"
  if git cat-file -e HEAD:BENCH_parallel.json 2>/dev/null; then
    base_cores=$(git show HEAD:BENCH_parallel.json | awk -F': ' '/"host_cores"/ { gsub(/[ ,]/, "", $2); print $2; exit }')
    if [ -n "$base_cores" ] && [ "$base_cores" = "$par_cores" ]; then
      for idx in 1 2; do
        [ "$idx" = "1" ] && sweep=fan-out || sweep=morsel
        old=$(git show HEAD:BENCH_parallel.json |
          awk -F': ' -v want="$idx" '/"overhead_1_domain"/ { if (++n == want) { gsub(/[ ,]/, "", $2); print $2; exit } }')
        new=$(awk -F': ' -v want="$idx" '/"overhead_1_domain"/ { if (++n == want) { gsub(/[ ,]/, "", $2); print $2; exit } }' BENCH_parallel.json)
        [ -n "$old" ] && [ -n "$new" ] || continue
        if awk -v o="$old" -v n="$new" 'BEGIN { exit !(n >= o * 0.95) }'; then
          echo "1-domain overhead ($sweep): baseline ${old}x -> ${new}x (ok)"
        else
          echo "FAIL: 1-domain $sweep overhead regressed ${old}x -> ${new}x (> 5% vs committed baseline)" >&2
          exit 1
        fi
      done
    else
      echo "committed baseline is from a ${base_cores:-?}-core host: overhead diff skipped"
    fi
  fi
fi

echo "== adaptive maintenance + budget arbitration gate (adaptive >= 1.5x eager delta-join, arbitrated hit >= static, oracle clean)"
# correctness (post-churn oracle) fails immediately; the throughput and
# hit-ratio thresholds get the same spaced retries as the other gates
ad_ok=0
for attempt in 1 2 3; do
  if [ "$attempt" != "1" ]; then
    echo "adaptive gate missed; cooling down before retry $attempt (noisy host)"
    sleep 20
  fi
  dune exec bench/main.exe -- adaptive ${BENCH_ARGS:-}
  ad_speedup=$(awk -F': ' '/"speedup_adaptive_vs_dj"/ { gsub(/[ ,]/, "", $2); print $2; exit }' BENCH_adaptive.json)
  ad_oracle=$(awk -F': ' '/"oracle_clean"/ { gsub(/[ ,}]/, "", $2); print $2; exit }' BENCH_adaptive.json)
  ad_gain=$(awk -F': ' '/"hit_ratio_gain"/ { gsub(/[ ,]/, "", $2); print $2; exit }' BENCH_adaptive.json)
  if [ -z "$ad_speedup" ] || [ -z "$ad_oracle" ] || [ -z "$ad_gain" ]; then
    echo "FAIL: missing fields in BENCH_adaptive.json" >&2
    exit 1
  fi
  echo "adaptive vs eager delta-join maintenance: ${ad_speedup}x, arbitrated-vs-static hit gain: ${ad_gain}, oracle: ${ad_oracle}"
  [ "$ad_oracle" = "true" ] || {
    echo "FAIL: adaptive bench answers violated the oracle after the churn" >&2
    exit 1
  }
  if awk -v s="$ad_speedup" 'BEGIN { exit !(s >= 1.5) }' &&
     awk -v g="$ad_gain" 'BEGIN { exit !(g >= 0) }'; then
    ad_ok=1
    break
  fi
done
[ "$ad_ok" = "1" ] || {
  echo "FAIL: adaptive gates missed on every attempt (need maintenance speedup >= 1.5x [${ad_speedup}x], hit gain >= 0 [${ad_gain}])" >&2
  exit 1
}

echo "== bench diff vs committed baselines (> ${MAX_BENCH_REGRESSION_PCT:-20}% q/s regression fails)"
# same spaced-retry policy as the gates: the diff compares absolute
# rates against a baseline captured on a calm host, so one contended
# shard sweep can trip it; a real regression trips it on every attempt
if ! tools/bench_diff.sh; then
  echo "bench diff missed; cooling down and re-running the shard bench (noisy host)"
  sleep 20
  dune exec bench/main.exe -- shard ${BENCH_ARGS:-}
  tools/bench_diff.sh || {
    echo "FAIL: fresh bench results regressed vs the committed BENCH_*.json (twice)" >&2
    exit 1
  }
fi

echo "ok: all checks passed"
