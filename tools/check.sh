#!/bin/sh
# Repo health gate: build, tier-1 tests, torture smokes (single-engine,
# sharded, parallel sharded with digest reproducibility, and the epoch
# probe path), telemetry overhead, shard scaling, probe-bound serving,
# Domain-pool parallelism, and a bench diff against committed baselines.
#
# Usage: tools/check.sh [--skip-bench]
#   SKIP_BENCH=1          same as --skip-bench
#   MAX_REGRESSION_PCT=N  override the telemetry overhead gate (default 5)
#   BENCH_ARGS="..."      extra args for the telemetry bench (e.g. --full)
set -eu

cd "$(dirname "$0")/.."

skip_bench="${SKIP_BENCH:-0}"
[ "${1:-}" = "--skip-bench" ] && skip_bench=1
max_pct="${MAX_REGRESSION_PCT:-5}"

echo "== dune build"
dune build

echo "== dune runtest (tier 1)"
dune runtest

echo "== torture smoke (fixed seed, oracle must stay silent)"
torture_out=$(dune exec bin/pmvctl.exe -- torture --seed 42 --events 400) || {
  echo "$torture_out"
  echo "FAIL: torture campaign reported oracle violations" >&2
  exit 1
}
echo "$torture_out"
# the smoke must actually inject faults: WAL crashes, lock conflicts,
# I/O errors and forced deferrals all > 0
echo "$torture_out" | tr ' ' '\n' |
  awk -F= '/^(crashes|lock_rejects|io_faults|deferrals)=/ { n++; if ($2 + 0 == 0) bad = 1 }
           END { exit !(n == 4 && !bad) }' || {
  echo "FAIL: torture smoke injected too few fault classes" >&2
  exit 1
}

echo "== sharded torture smoke (4 hash-partitioned engines, merged oracle must stay silent)"
shard_out=$(dune exec bin/pmvctl.exe -- torture --seed 42 --events 200 --shards 4) || {
  echo "$shard_out"
  echo "FAIL: sharded torture campaign reported oracle violations" >&2
  exit 1
}
echo "$shard_out"
# shard-scoped faults must actually fire (no WAL crashes by design)
echo "$shard_out" | tr ' ' '\n' |
  awk -F= '/^(lock_rejects|io_faults|deferrals)=/ { n++; if ($2 + 0 == 0) bad = 1 }
           END { exit !(n == 3 && !bad) }' || {
  echo "FAIL: sharded torture smoke injected too few fault classes" >&2
  exit 1
}

echo "== parallel torture smoke (4 shards x 4 domains, digest reproducible)"
par_out=$(dune exec bin/pmvctl.exe -- torture --seed 42 --events 200 --shards 4 --domains 4) || {
  echo "$par_out"
  echo "FAIL: parallel sharded torture campaign reported oracle violations" >&2
  exit 1
}
echo "$par_out"
par_out2=$(dune exec bin/pmvctl.exe -- torture --seed 42 --events 200 --shards 4 --domains 4) || {
  echo "FAIL: parallel sharded torture rerun reported oracle violations" >&2
  exit 1
}
digest1=$(echo "$par_out" | tr ' ' '\n' | awk -F= '/^digest=/ { print $2; exit }')
digest2=$(echo "$par_out2" | tr ' ' '\n' | awk -F= '/^digest=/ { print $2; exit }')
if [ -z "$digest1" ] || [ "$digest1" != "$digest2" ]; then
  echo "FAIL: parallel torture digest not reproducible (${digest1:-none} vs ${digest2:-none})" >&2
  exit 1
fi
echo "digest reproducible across runs: $digest1"

echo "== epoch-path torture cross-check (same seed, lock-free probe reads)"
# same campaign as the sharded smoke but answering through the epoch
# fast path; the oracle must stay just as silent. Digests legitimately
# differ across probe paths (cache admission order changes), so only
# the verdict is gated.
epoch_out=$(dune exec bin/pmvctl.exe -- torture --seed 42 --events 200 --shards 4 --probe-path epoch) || {
  echo "$epoch_out"
  echo "FAIL: epoch-path torture campaign reported oracle violations" >&2
  exit 1
}
echo "$epoch_out"

if [ "$skip_bench" = "1" ]; then
  echo "== telemetry overhead and shard scaling gates skipped"
  exit 0
fi

echo "== telemetry overhead gate (< ${max_pct}%)"
dune exec bench/main.exe -- telemetry ${BENCH_ARGS:-}

pct=$(awk -F': ' '/"regression_pct"/ { gsub(/[ ,]/, "", $2); print $2 }' BENCH_telemetry.json)
if [ -z "$pct" ]; then
  echo "FAIL: no regression_pct in BENCH_telemetry.json" >&2
  exit 1
fi
echo "telemetry-on vs telemetry-off regression: ${pct}%"
awk -v pct="$pct" -v max="$max_pct" 'BEGIN { exit !(pct < max) }' || {
  echo "FAIL: telemetry overhead ${pct}% >= ${max_pct}%" >&2
  exit 1
}

echo "== shard scaling gate (>= 1.5x at 4 shards, no regression at 1 shard)"
dune exec bench/main.exe -- shard ${BENCH_ARGS:-}

# first occurrences of the shared key names are the scan-bound regime;
# the probe_bound block uses its own distinct keys (router4_vs_engine,
# router1_vs_engine) gated below
speedup=$(awk -F': ' '/"speedup_4_shards"/ { gsub(/[ ,]/, "", $2); print $2; exit }' BENCH_shard.json)
one_shard=$(awk -F': ' '/"one_shard_router_vs_engine"/ { gsub(/[ ,]/, "", $2); print $2; exit }' BENCH_shard.json)
oracle=$(awk -F': ' '/^ *"oracle_clean"/ { gsub(/[ ,}]/, "", $2); print $2; exit }' BENCH_shard.json)
if [ -z "$speedup" ] || [ -z "$one_shard" ] || [ -z "$oracle" ]; then
  echo "FAIL: missing fields in BENCH_shard.json" >&2
  exit 1
fi
echo "4-shard speedup: ${speedup}x, 1-shard router vs engine: ${one_shard}x, oracle: ${oracle}"
[ "$oracle" = "true" ] || {
  echo "FAIL: shard bench merged answers violated the oracle" >&2
  exit 1
}
awk -v s="$speedup" 'BEGIN { exit !(s >= 1.5) }' || {
  echo "FAIL: 4-shard speedup ${speedup}x < 1.5x" >&2
  exit 1
}
awk -v r="$one_shard" 'BEGIN { exit !(r >= 0.85) }' || {
  echo "FAIL: 1-shard router regressed to ${one_shard}x of the plain engine" >&2
  exit 1
}

echo "== probe-bound gate (router cache residency must beat the single engine)"
# epoch fast path, paired interleaved segments (see bench/exp_shard.ml);
# router4 wins on aggregate probe-cache residency, router1 must at
# least break even
p_router4=$(awk -F': ' '/"router4_vs_engine"/ { gsub(/[ ,]/, "", $2); print $2; exit }' BENCH_shard.json)
p_router1=$(awk -F': ' '/"router1_vs_engine"/ { gsub(/[ ,]/, "", $2); print $2; exit }' BENCH_shard.json)
p_checksums=$(awk -F': ' '/"checksums_identical"/ { gsub(/[ ,}]/, "", $2); print $2; exit }' BENCH_shard.json)
if [ -z "$p_router4" ] || [ -z "$p_router1" ] || [ -z "$p_checksums" ]; then
  echo "FAIL: missing probe_bound fields in BENCH_shard.json" >&2
  exit 1
fi
echo "probe-bound router4 vs engine: ${p_router4}x, router1 vs engine: ${p_router1}x, checksums identical: ${p_checksums}"
[ "$p_checksums" = "true" ] || {
  echo "FAIL: probe-bound answers differ across probe paths or shard counts" >&2
  exit 1
}
awk -v r="$p_router4" 'BEGIN { exit !(r >= 1.0) }' || {
  echo "FAIL: probe-bound 4-shard router ${p_router4}x < 1.0x vs single engine" >&2
  exit 1
}
awk -v r="$p_router1" 'BEGIN { exit !(r >= 0.95) }' || {
  echo "FAIL: probe-bound 1-shard router regressed to ${p_router1}x of the plain engine" >&2
  exit 1
}

echo "== parallel gate (checksums + oracle always; speedups when the host has the cores)"
dune exec bench/main.exe -- parallel ${BENCH_ARGS:-}

applicable=$(awk -F': ' '/"speedup_applicable"/ { gsub(/[ ,]/, "", $2); print $2; exit }' BENCH_parallel.json)
checksums=$(awk -F': ' '/"checksums_identical"/ { gsub(/[ ,]/, "", $2); print $2; exit }' BENCH_parallel.json)
par_oracle=$(awk -F': ' '/^ *"oracle_clean"/ { gsub(/[ ,}]/, "", $2); print $2; exit }' BENCH_parallel.json)
# first occurrences are the fan-out sweep; the morsel block repeats the keys
fan_speedup=$(awk -F': ' '/"speedup_max_domains"/ { gsub(/[ ,]/, "", $2); print $2; exit }' BENCH_parallel.json)
fan_overhead=$(awk -F': ' '/"overhead_1_domain"/ { gsub(/[ ,]/, "", $2); print $2; exit }' BENCH_parallel.json)
if [ -z "$applicable" ] || [ -z "$checksums" ] || [ -z "$par_oracle" ] || [ -z "$fan_speedup" ] || [ -z "$fan_overhead" ]; then
  echo "FAIL: missing fields in BENCH_parallel.json" >&2
  exit 1
fi
[ "$par_oracle" = "true" ] || {
  echo "FAIL: parallel bench answers violated the oracle" >&2
  exit 1
}
[ "$checksums" = "true" ] || {
  echo "FAIL: parallel result streams not checksum-identical to sequential" >&2
  exit 1
}
if [ "$applicable" = "true" ]; then
  echo "fan-out speedup: ${fan_speedup}x, 1-domain overhead ratio: ${fan_overhead}x"
  awk -v s="$fan_speedup" 'BEGIN { exit !(s >= 1.8) }' || {
    echo "FAIL: fan-out speedup ${fan_speedup}x < 1.8x at max domains" >&2
    exit 1
  }
  awk -v r="$fan_overhead" 'BEGIN { exit !(r >= 0.95) }' || {
    echo "FAIL: 1-domain pool regressed to ${fan_overhead}x of no-pool sequential" >&2
    exit 1
  }
else
  # an idle extra domain still pays stop-the-world GC sync, so on a
  # host without enough cores neither speedup nor the 1-domain
  # overhead ratio measures our machinery; correctness gates above
  # still ran unconditionally
  echo "host lacks the cores for the largest pool: speedup/overhead gates skipped"
  echo "(recorded anyway: fan-out ${fan_speedup}x, 1-domain ${fan_overhead}x)"
fi

echo "== bench diff vs committed baselines (> 10% q/s regression fails)"
tools/bench_diff.sh || {
  echo "FAIL: fresh bench results regressed vs the committed BENCH_*.json" >&2
  exit 1
}

echo "ok: all checks passed"
