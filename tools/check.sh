#!/bin/sh
# Repo health gate: build, tier-1 tests, torture smoke, telemetry overhead.
#
# Usage: tools/check.sh [--skip-bench]
#   SKIP_BENCH=1          same as --skip-bench
#   MAX_REGRESSION_PCT=N  override the telemetry overhead gate (default 5)
#   BENCH_ARGS="..."      extra args for the telemetry bench (e.g. --full)
set -eu

cd "$(dirname "$0")/.."

skip_bench="${SKIP_BENCH:-0}"
[ "${1:-}" = "--skip-bench" ] && skip_bench=1
max_pct="${MAX_REGRESSION_PCT:-5}"

echo "== dune build"
dune build

echo "== dune runtest (tier 1)"
dune runtest

echo "== torture smoke (fixed seed, oracle must stay silent)"
torture_out=$(dune exec bin/pmvctl.exe -- torture --seed 42 --events 400) || {
  echo "$torture_out"
  echo "FAIL: torture campaign reported oracle violations" >&2
  exit 1
}
echo "$torture_out"
# the smoke must actually inject faults: WAL crashes, lock conflicts,
# I/O errors and forced deferrals all > 0
echo "$torture_out" | tr ' ' '\n' |
  awk -F= '/^(crashes|lock_rejects|io_faults|deferrals)=/ { n++; if ($2 + 0 == 0) bad = 1 }
           END { exit !(n == 4 && !bad) }' || {
  echo "FAIL: torture smoke injected too few fault classes" >&2
  exit 1
}

if [ "$skip_bench" = "1" ]; then
  echo "== telemetry overhead gate skipped"
  exit 0
fi

echo "== telemetry overhead gate (< ${max_pct}%)"
dune exec bench/main.exe -- telemetry ${BENCH_ARGS:-}

pct=$(awk -F': ' '/"regression_pct"/ { gsub(/[ ,]/, "", $2); print $2 }' BENCH_telemetry.json)
if [ -z "$pct" ]; then
  echo "FAIL: no regression_pct in BENCH_telemetry.json" >&2
  exit 1
fi
echo "telemetry-on vs telemetry-off regression: ${pct}%"
awk -v pct="$pct" -v max="$max_pct" 'BEGIN { exit !(pct < max) }' || {
  echo "FAIL: telemetry overhead ${pct}% >= ${max_pct}%" >&2
  exit 1
}
echo "ok: all checks passed"
